// Op-level microbenchmarks of the FUSE path (google-benchmark, manual time
// from the virtual clock): per-op request latency through CntrFS vs the
// native filesystem. Supporting data for Figure 2's per-workload analysis,
// plus the READDIRPLUS before/after bars for the cold-tree-walk hot path.
#include <benchmark/benchmark.h>

#include <string>

#include "src/workloads/harness.h"

using namespace cntr;
using namespace cntr::workloads;

namespace {

// Measures virtual ns per op of `fn` on a fresh side.
template <typename Fn>
void RunOpBench(benchmark::State& state, bool through_cntr, Fn&& op) {
  HarnessOptions opts;
  auto side = through_cntr ? BenchSide::MakeCntrFs(opts) : BenchSide::MakeNative(opts);
  if (!side.ok()) {
    state.SkipWithError("side setup failed");
    return;
  }
  kernel::Kernel& kernel = (*side)->kernel();
  // Setup: one directory with files to operate on.
  auto proc = kernel.Fork(*kernel.init(), "micro");
  std::string dir = through_cntr ? "/cntrmnt/data/bench" : "/data/bench";
  int i = 0;
  for (auto _ : state) {
    uint64_t before = kernel.clock().NowNs();
    op(kernel, *proc, dir, i++);
    uint64_t elapsed = kernel.clock().NowNs() - before;
    state.SetIterationTime(static_cast<double>(elapsed) * 1e-9);
  }
}

void CreateUnlinkOp(kernel::Kernel& kernel, kernel::Process& proc, const std::string& dir,
                    int i) {
  std::string path = dir + "/micro-" + std::to_string(i);
  auto fd = kernel.Open(proc, path, kernel::kOWrOnly | kernel::kOCreat, 0644);
  if (fd.ok()) {
    (void)kernel.Close(proc, fd.value());
    (void)kernel.Unlink(proc, path);
  }
}

void StatColdOp(kernel::Kernel& kernel, kernel::Process& proc, const std::string& dir, int i) {
  static bool created = false;
  std::string path = dir + "/stat-target";
  if (!created) {
    auto fd = kernel.Open(proc, path, kernel::kOWrOnly | kernel::kOCreat, 0644);
    if (fd.ok()) {
      (void)kernel.Close(proc, fd.value());
    }
    created = true;
  }
  kernel.dcache().Clear();  // force the lookup every iteration
  (void)kernel.Stat(proc, path);
}

// 4KB pwrite against one long-lived fd. The fd is opened once per run and
// closed at the end; a failed open skips the benchmark instead of silently
// timing a no-op against fd -1.
void RunWrite4kBench(benchmark::State& state, bool through_cntr) {
  HarnessOptions opts;
  auto side = through_cntr ? BenchSide::MakeCntrFs(opts) : BenchSide::MakeNative(opts);
  if (!side.ok()) {
    state.SkipWithError("side setup failed");
    return;
  }
  kernel::Kernel& kernel = (*side)->kernel();
  auto proc = kernel.Fork(*kernel.init(), "micro");
  std::string dir = through_cntr ? "/cntrmnt/data/bench" : "/data/bench";
  auto opened = kernel.Open(*proc, dir + "/write-target", kernel::kOWrOnly | kernel::kOCreat,
                            0644);
  if (!opened.ok()) {
    state.SkipWithError(("open failed: " + opened.status().ToString()).c_str());
    return;
  }
  kernel::Fd fd = opened.value();
  char buf[4096] = {};
  int i = 0;
  for (auto _ : state) {
    uint64_t before = kernel.clock().NowNs();
    (void)kernel.Pwrite(*proc, fd, buf, sizeof(buf), static_cast<uint64_t>(i++ % 1024) * 4096);
    uint64_t elapsed = kernel.clock().NowNs() - before;
    state.SetIterationTime(static_cast<double>(elapsed) * 1e-9);
  }
  (void)kernel.Close(*proc, fd);
}

// Cold readdir + stat-every-child of a K-entry directory: the metadata walk
// behind compilebench-read (13.3x) and postmark (7.1x). With READDIRPLUS the
// listing and all child attributes arrive in ⌈K/batch⌉ requests; without it
// every child pays its own LOOKUP round trip.
constexpr int kWalkFiles = 256;

void RunColdWalkBench(benchmark::State& state, bool through_cntr, bool readdirplus) {
  HarnessOptions opts;
  opts.fuse.readdirplus = readdirplus;
  auto side = through_cntr ? BenchSide::MakeCntrFs(opts) : BenchSide::MakeNative(opts);
  if (!side.ok()) {
    state.SkipWithError("side setup failed");
    return;
  }
  kernel::Kernel& kernel = (*side)->kernel();
  auto proc = kernel.Fork(*kernel.init(), "micro");
  std::string dir = (through_cntr ? std::string("/cntrmnt") : std::string("")) +
                    "/data/bench/walk";
  if (!kernel.Mkdir(*proc, dir, 0755).ok()) {
    state.SkipWithError("mkdir failed");
    return;
  }
  for (int i = 0; i < kWalkFiles; ++i) {
    auto fd = kernel.Open(*proc, dir + "/f" + std::to_string(i),
                          kernel::kOWrOnly | kernel::kOCreat, 0644);
    if (!fd.ok()) {
      state.SkipWithError("file setup failed");
      return;
    }
    (void)kernel.Close(*proc, fd.value());
  }
  for (auto _ : state) {
    kernel.dcache().Clear();  // cold tree: every dentry is gone
    uint64_t before = kernel.clock().NowNs();
    auto dfd = kernel.Open(*proc, dir, kernel::kORdOnly | kernel::kODirectory);
    if (!dfd.ok()) {
      state.SkipWithError("opendir failed");
      return;
    }
    auto entries = kernel.Getdents(*proc, dfd.value());
    (void)kernel.Close(*proc, dfd.value());
    if (!entries.ok()) {
      state.SkipWithError("getdents failed");
      return;
    }
    for (const auto& entry : entries.value()) {
      if (entry.name == "." || entry.name == "..") {
        continue;
      }
      (void)kernel.Stat(*proc, dir + "/" + entry.name);
    }
    uint64_t elapsed = kernel.clock().NowNs() - before;
    state.SetIterationTime(static_cast<double>(elapsed) * 1e-9);
  }
  state.counters["files"] = kWalkFiles;
}

void BM_CreateUnlink_Native(benchmark::State& state) {
  RunOpBench(state, false, CreateUnlinkOp);
}
void BM_CreateUnlink_CntrFs(benchmark::State& state) {
  RunOpBench(state, true, CreateUnlinkOp);
}
void BM_StatCold_Native(benchmark::State& state) { RunOpBench(state, false, StatColdOp); }
void BM_StatCold_CntrFs(benchmark::State& state) { RunOpBench(state, true, StatColdOp); }
void BM_Write4k_Native(benchmark::State& state) { RunWrite4kBench(state, false); }
void BM_Write4k_CntrFs(benchmark::State& state) { RunWrite4kBench(state, true); }
void BM_ColdTreeWalk_Native(benchmark::State& state) {
  RunColdWalkBench(state, false, /*readdirplus=*/false);
}
void BM_ColdTreeWalk_CntrFs(benchmark::State& state) {
  RunColdWalkBench(state, true, /*readdirplus=*/true);
}
void BM_ColdTreeWalk_CntrFsNoReaddirPlus(benchmark::State& state) {
  RunColdWalkBench(state, true, /*readdirplus=*/false);
}

}  // namespace

BENCHMARK(BM_CreateUnlink_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_CreateUnlink_CntrFs)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_StatCold_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_StatCold_CntrFs)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_Write4k_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_Write4k_CntrFs)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_ColdTreeWalk_Native)->UseManualTime()->Iterations(50);
BENCHMARK(BM_ColdTreeWalk_CntrFs)->UseManualTime()->Iterations(50);
BENCHMARK(BM_ColdTreeWalk_CntrFsNoReaddirPlus)->UseManualTime()->Iterations(50);

BENCHMARK_MAIN();
