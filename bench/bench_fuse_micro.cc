// Op-level microbenchmarks of the FUSE path (google-benchmark, manual time
// from the virtual clock): per-op request latency through CntrFS vs the
// native filesystem. Supporting data for Figure 2's per-workload analysis.
#include <benchmark/benchmark.h>

#include "src/workloads/harness.h"

using namespace cntr;
using namespace cntr::workloads;

namespace {

// Measures virtual ns per op of `fn` on a fresh side.
template <typename Fn>
void RunOpBench(benchmark::State& state, bool through_cntr, Fn&& op) {
  HarnessOptions opts;
  auto side = through_cntr ? BenchSide::MakeCntrFs(opts) : BenchSide::MakeNative(opts);
  if (!side.ok()) {
    state.SkipWithError("side setup failed");
    return;
  }
  kernel::Kernel& kernel = (*side)->kernel();
  // Setup: one directory with files to operate on.
  auto proc = kernel.Fork(*kernel.init(), "micro");
  std::string dir = through_cntr ? "/cntrmnt/data/bench" : "/data/bench";
  int i = 0;
  for (auto _ : state) {
    uint64_t before = kernel.clock().NowNs();
    op(kernel, *proc, dir, i++);
    uint64_t elapsed = kernel.clock().NowNs() - before;
    state.SetIterationTime(static_cast<double>(elapsed) * 1e-9);
  }
}

void CreateUnlinkOp(kernel::Kernel& kernel, kernel::Process& proc, const std::string& dir,
                    int i) {
  std::string path = dir + "/micro-" + std::to_string(i);
  auto fd = kernel.Open(proc, path, kernel::kOWrOnly | kernel::kOCreat, 0644);
  if (fd.ok()) {
    (void)kernel.Close(proc, fd.value());
    (void)kernel.Unlink(proc, path);
  }
}

void StatColdOp(kernel::Kernel& kernel, kernel::Process& proc, const std::string& dir, int i) {
  static bool created = false;
  std::string path = dir + "/stat-target";
  if (!created) {
    auto fd = kernel.Open(proc, path, kernel::kOWrOnly | kernel::kOCreat, 0644);
    if (fd.ok()) {
      (void)kernel.Close(proc, fd.value());
    }
    created = true;
  }
  kernel.dcache().Clear();  // force the lookup every iteration
  (void)kernel.Stat(proc, path);
}

void Write4kOp(kernel::Kernel& kernel, kernel::Process& proc, const std::string& dir, int i) {
  static kernel::Fd fd = -1;
  static kernel::Kernel* owner = nullptr;
  if (owner != &kernel) {
    auto opened = kernel.Open(proc, dir + "/write-target", kernel::kOWrOnly | kernel::kOCreat,
                              0644);
    fd = opened.ok() ? opened.value() : -1;
    owner = &kernel;
  }
  char buf[4096] = {};
  (void)kernel.Pwrite(proc, fd, buf, sizeof(buf), static_cast<uint64_t>(i % 1024) * 4096);
}

void BM_CreateUnlink_Native(benchmark::State& state) {
  RunOpBench(state, false, CreateUnlinkOp);
}
void BM_CreateUnlink_CntrFs(benchmark::State& state) {
  RunOpBench(state, true, CreateUnlinkOp);
}
void BM_StatCold_Native(benchmark::State& state) { RunOpBench(state, false, StatColdOp); }
void BM_StatCold_CntrFs(benchmark::State& state) { RunOpBench(state, true, StatColdOp); }
void BM_Write4k_Native(benchmark::State& state) { RunOpBench(state, false, Write4kOp); }
void BM_Write4k_CntrFs(benchmark::State& state) { RunOpBench(state, true, Write4kOp); }

}  // namespace

BENCHMARK(BM_CreateUnlink_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_CreateUnlink_CntrFs)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_StatCold_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_StatCold_CntrFs)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_Write4k_Native)->UseManualTime()->Iterations(2000);
BENCHMARK(BM_Write4k_CntrFs)->UseManualTime()->Iterations(2000);

BENCHMARK_MAIN();
