// Figure 4 reproduction: sequential-read throughput as CNTRFS server
// threads increase (IOzone, 4KB records). Queue contention makes peak
// throughput drop a few percent while responsiveness under blocking ops
// improves — the paper measured up to ~8% at 16 threads.
#include <cstdio>

#include "src/workloads/harness.h"

using namespace cntr::workloads;

int main() {
  std::printf("=== Figure 4: Multithreading (IOzone sequential read) ===\n\n");
  std::printf("%8s %16s %10s\n", "threads", "MB/s", "vs 1 thr");

  // keep_cache off so every pass reaches the server (the server side stays
  // warm): the request path, not the data, is what this figure measures.
  double base = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    HarnessOptions opts;
    opts.server_threads = threads;
    opts.fuse.keep_cache = false;
    auto workload = MakeIoZoneWarmRead(24, 4);
    auto side = BenchSide::MakeCntrFs(opts);
    if (!side.ok()) {
      std::printf("side setup failed: %s\n", side.status().ToString().c_str());
      return 1;
    }
    auto result = (*side)->Run(*workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) {
      base = result->value;
    }
    std::printf("%8d %16.0f %9.1f%%\n", threads, result->value,
                base > 0 ? (result->value / base - 1) * 100 : 0);
  }
  std::printf("\n(paper: throughput declines up to ~8%% from 1 to 16 threads)\n");
  return 0;
}
