// Figure 4 reproduction plus the multi-queue extension.
//
// Part 1 — the paper's experiment: sequential-read throughput as CNTRFS
// server threads increase (IOzone, 4KB records) over the single shared
// /dev/fuse queue. Queue contention makes peak throughput drop a few
// percent while responsiveness under blocking ops improves — the paper
// measured up to ~8% at 16 threads.
//
// Part 2 — what the paper's design leaves on the table: the same read
// workload driven by four *independent client processes* (each on its own
// parallel virtual timeline), sweeping the number of cloned request-queue
// channels (FUSE_DEV_IOC_CLONE analogue, fuse_conn.h). With one channel the
// clients serialize on the queue's virtual occupancy — aggregate throughput
// plateaus at single-stream rate; with one channel per process the sticky
// pid routing keeps them fully parallel and aggregate throughput scales
// near-linearly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "src/workloads/harness.h"

using namespace cntr::workloads;

namespace {

// Part 1: the paper's single-queue thread sweep (unchanged semantics — one
// channel is the default, so these numbers reproduce Figure 4).
int RunFigure4() {
  std::printf("=== Figure 4: Multithreading (IOzone sequential read) ===\n\n");
  std::printf("%8s %16s %10s\n", "threads", "MB/s", "vs 1 thr");

  // keep_cache off so every pass reaches the server (the server side stays
  // warm): the request path, not the data, is what this figure measures.
  double base = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    HarnessOptions opts;
    opts.server_threads = threads;
    // The paper's configuration (fixed 128KiB windows, no flushers), so
    // these numbers keep tracking Figure 4.
    opts.fuse = cntr::fuse::FuseMountOptions::Paper();
    opts.fuse.keep_cache = false;
    auto workload = MakeIoZoneWarmRead(24, 4);
    auto side = BenchSide::MakeCntrFs(opts);
    if (!side.ok()) {
      std::printf("side setup failed: %s\n", side.status().ToString().c_str());
      return 1;
    }
    auto result = (*side)->Run(*workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) {
      base = result->value;
    }
    std::printf("%8d %16.0f %9.1f%%\n", threads, result->value,
                base > 0 ? (result->value / base - 1) * 100 : 0);
  }
  std::printf("\n(paper: throughput declines up to ~8%% from 1 to 16 threads)\n");
  return 0;
}

// Part 2: channel sweep under four independent client processes.
int RunChannelSweep() {
  constexpr int kClients = 4;
  constexpr int kServerThreads = 4;
  constexpr uint64_t kFileBytes = 8ull << 20;
  constexpr int kPasses = 2;
  constexpr uint32_t kRecord = 4096;

  std::printf("\n=== Multi-queue channels: %d independent client processes, %d server threads "
              "===\n\n", kClients, kServerThreads);
  std::printf("%9s %18s %12s\n", "channels", "aggregate MB/s", "vs 1 chan");

  double base = 0;
  for (int channels : {1, 2, 4}) {
    HarnessOptions opts;
    opts.server_threads = kServerThreads;
    opts.fuse.keep_cache = false;   // every measured read reaches the server
    opts.fuse.async_read = false;   // one round trip per record: the queue,
                                    // not the payload, is what this measures
    opts.fuse.num_channels = channels;

    std::vector<cntr::SimClock::LanePtr> lanes;  // shared: queued requests pin them
    auto side = BenchSide::MakeCntrFs(opts);
    if (!side.ok()) {
      std::printf("side setup failed: %s\n", side.status().ToString().c_str());
      return 1;
    }
    cntr::kernel::Kernel& k = (*side)->kernel();
    cntr::fuse::FuseConn& conn = (*side)->fuse_fs()->conn();

    // Independent processes, balanced over the sticky routing: fork until
    // no channel carries more than its fair share of clients (pid hashing
    // is sticky, so picking pids is picking channels).
    std::vector<cntr::kernel::ProcessPtr> clients;
    std::vector<int> per_channel(conn.num_channels(), 0);
    const int fair_share = (kClients + channels - 1) / channels;
    while (static_cast<int>(clients.size()) < kClients) {
      auto proc = k.Fork(*k.init(), "iozone-client");
      size_t route = conn.RouteChannel(proc->global_pid());
      if (per_channel[route] >= fair_share) {
        k.Exit(*proc);
        continue;
      }
      ++per_channel[route];
      clients.push_back(std::move(proc));
    }

    // Setup (untimed): each client writes then warm-reads its own file, so
    // the server side is cached and only the request path is measured.
    std::vector<std::string> paths;
    for (int c = 0; c < kClients; ++c) {
      paths.push_back("/cntrmnt/data/bench/iozone-mq-" + std::to_string(c) + ".dat");
      auto fd = k.Open(*clients[c], paths[c], cntr::kernel::kOWrOnly | cntr::kernel::kOCreat,
                       0644);
      if (!fd.ok()) {
        std::printf("setup open failed: %s\n", fd.status().ToString().c_str());
        return 1;
      }
      std::vector<char> chunk(128 * 1024, 'm');
      for (uint64_t off = 0; off < kFileBytes; off += chunk.size()) {
        (void)k.Write(*clients[c], fd.value(), chunk.data(), chunk.size());
      }
      (void)k.Fsync(*clients[c], fd.value());
      (void)k.Close(*clients[c], fd.value());
      auto warm = k.Open(*clients[c], paths[c], cntr::kernel::kORdOnly);
      if (warm.ok()) {
        std::vector<char> buf(kRecord);
        while (true) {
          auto n = k.Read(*clients[c], warm.value(), buf.data(), buf.size());
          if (!n.ok() || n.value() == 0) {
            break;
          }
        }
        (void)k.Close(*clients[c], warm.value());
      }
    }

    // Measured region: one thread per client, each on its own virtual lane.
    std::atomic<uint64_t> total_bytes{0};
    for (int c = 0; c < kClients; ++c) {
      lanes.push_back(std::make_shared<cntr::SimClock::Lane>());
    }
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        cntr::SimClock::LaneScope scope(lanes[c]);
        uint64_t bytes = 0;
        std::vector<char> buf(kRecord);
        for (int pass = 0; pass < kPasses; ++pass) {
          auto fd = k.Open(*clients[c], paths[c], cntr::kernel::kORdOnly);
          if (!fd.ok()) {
            return;
          }
          while (true) {
            auto n = k.Read(*clients[c], fd.value(), buf.data(), buf.size());
            if (!n.ok() || n.value() == 0) {
              break;
            }
            bytes += n.value();
          }
          (void)k.Close(*clients[c], fd.value());
        }
        total_bytes.fetch_add(bytes);
      });
    }
    for (auto& t : threads) {
      t.join();
    }

    // The region's virtual duration is the slowest client (makespan); fold
    // it back into the shared clock.
    uint64_t makespan = 0;
    for (const auto& lane : lanes) {
      makespan = std::max(makespan, lane->local_ns.load());
    }
    k.clock().Advance(makespan);

    double mbps = makespan > 0
                      ? static_cast<double>(total_bytes.load()) / (1 << 20) /
                            (static_cast<double>(makespan) * 1e-9)
                      : 0;
    if (channels == 1) {
      base = mbps;
    }
    std::printf("%9d %18.0f %11.2fx\n", channels, mbps, base > 0 ? mbps / base : 0);
  }
  std::printf("\n(independent processes hash to sticky channels; expect near-linear scaling\n"
              " to %d channels where the single queue's occupancy plateaus)\n", kClients);
  return 0;
}

}  // namespace

int main() {
  if (int rc = RunFigure4(); rc != 0) {
    return rc;
  }
  return RunChannelSweep();
}
