#!/usr/bin/env python3
"""Bench regression guard: compare a bench_optimizations --json artifact
against recorded baselines and fail the build when an optimized-config panel
drops more than the tolerance below its baseline.

Usage: check_regression.py <baselines.json> <artifact.json>

Baseline entry forms (bench/baselines.json):
  "key": {"value": V}                 -- higher is better; fail when the
                                         measured value < V * (1 - tolerance)
  "key": {"ceiling": C}               -- smaller is better with an absolute
                                         bound; fail when measured > C
  "_tolerance": 0.15                  -- optional, default 15%

The benchmarks report virtual (simulated) time, so the numbers are stable
across machines; keys with real-thread jitter (multi-client lanes) are
simply not listed in the baselines.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baselines = json.load(f)
    with open(sys.argv[2]) as f:
        measured = json.load(f)

    tolerance = baselines.pop("_tolerance", 0.15)
    failures = []
    for key, spec in baselines.items():
        if key not in measured:
            failures.append(f"{key}: missing from artifact")
            continue
        got = measured[key]
        if "ceiling" in spec:
            if got > spec["ceiling"]:
                failures.append(
                    f"{key}: {got:.3f} exceeds ceiling {spec['ceiling']:.3f}")
            else:
                print(f"ok   {key}: {got:.3f} <= ceiling {spec['ceiling']:.3f}")
        else:
            floor = spec["value"] * (1 - tolerance)
            if got < floor:
                failures.append(
                    f"{key}: {got:.3f} dropped >{tolerance:.0%} below "
                    f"baseline {spec['value']:.3f} (floor {floor:.3f})")
            else:
                print(f"ok   {key}: {got:.3f} vs baseline {spec['value']:.3f}")

    if failures:
        print("\nBENCH REGRESSIONS:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("\nall panels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
