#!/usr/bin/env python3
"""Bench regression guard: compare bench --json artifacts against recorded
baselines and fail the build when an optimized-config panel drops more than
the tolerance below its baseline.

Usage: check_regression.py <baselines.json> <artifact.json> [artifact2.json ...]

Multiple artifacts are shallow-merged (later files win on key collisions),
so baselines spanning several benchmarks — bench_optimizations panels plus
the bench_deployment fleet panel — are checked in one invocation.

Baseline entry forms (bench/baselines.json):
  "key": {"value": V}                 -- higher is better; fail when the
                                         measured value < V * (1 - tolerance)
  "key": {"ceiling": C}               -- smaller is better with an absolute
                                         bound; fail when measured > C
  "_tolerance": 0.15                  -- optional, default 15%

The benchmarks report virtual (simulated) time, so the numbers are stable
across machines; keys with real-thread jitter (multi-client lanes) are
simply not listed in the baselines.

The artifact may also carry a nested "obs" object (the observability
plane's registry SnapshotJson, embedded by bench_optimizations): it is not
diffed against baselines, but it is sanity-checked — request-latency
histograms must be present and populated, and every histogram's quantiles
must be monotonic and bounded by its recorded max.
"""
import json
import sys


def check_obs(obs, failures) -> None:
    """Structural sanity for the embedded registry snapshot."""
    hists = obs.get("histograms", {})
    request_series = [k for k in hists if k.startswith("cntr_fuse_request_ns")]
    if not request_series:
        failures.append("obs: no cntr_fuse_request_ns histograms in snapshot")
        return
    if not any(hists[k].get("count", 0) > 0 for k in request_series):
        failures.append("obs: every request-latency histogram is empty "
                        "(tracing disabled during the traced run?)")
    for key in request_series:
        h = hists[key]
        p50, p95, p99 = h.get("p50", 0), h.get("p95", 0), h.get("p99", 0)
        if not p50 <= p95 <= p99:
            failures.append(
                f"obs {key}: quantiles not monotonic "
                f"(p50={p50} p95={p95} p99={p99})")
        if h.get("count", 0) > 0 and p99 > h.get("max", 0):
            failures.append(
                f"obs {key}: p99 {p99} exceeds recorded max {h.get('max', 0)}")


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baselines = json.load(f)
    measured = {}
    for path in sys.argv[2:]:
        with open(path) as f:
            measured.update(json.load(f))

    tolerance = baselines.pop("_tolerance", 0.15)
    failures = []
    for key, spec in baselines.items():
        if key not in measured:
            failures.append(f"{key}: missing from artifact")
            continue
        got = measured[key]
        if "ceiling" in spec:
            if got > spec["ceiling"]:
                failures.append(
                    f"{key}: {got:.3f} exceeds ceiling {spec['ceiling']:.3f}")
            else:
                print(f"ok   {key}: {got:.3f} <= ceiling {spec['ceiling']:.3f}")
        else:
            floor = spec["value"] * (1 - tolerance)
            if got < floor:
                failures.append(
                    f"{key}: {got:.3f} dropped >{tolerance:.0%} below "
                    f"baseline {spec['value']:.3f} (floor {floor:.3f})")
            else:
                print(f"ok   {key}: {got:.3f} vs baseline {spec['value']:.3f}")

    if isinstance(measured.get("obs"), dict):
        check_obs(measured["obs"], failures)

    if failures:
        print("\nBENCH REGRESSIONS:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("\nall panels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
