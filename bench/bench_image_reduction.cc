// Figure 5 reproduction: container-size reduction from docker-slim over the
// Top-50 Docker Hub images (§5.3). Prints the histogram and the summary
// statistics the paper reports: mean 66.6%, >75% of images between 60-97%,
// 6/50 single-binary Go images below 10%.
#include <algorithm>
#include <cstdio>

#include "src/container/engine.h"
#include "src/slim/dataset.h"
#include "src/slim/slimmer.h"

using namespace cntr;

int main() {
  auto kernel = kernel::Kernel::Create();
  container::ContainerRuntime runtime(kernel.get());
  container::Registry registry(&kernel->clock());
  container::DockerEngine docker(&runtime, &registry);
  slim::DockerSlim slimmer(kernel.get(), &docker);

  std::printf("=== Figure 5: docker-slim reduction over the Top-50 images ===\n\n");

  std::vector<double> reductions;
  int validated = 0;
  int below_10 = 0;
  int band_60_97 = 0;
  for (auto& entry : slim::Top50Images()) {
    auto result = slimmer.Analyze(entry.image, entry.runtime_paths);
    if (!result.ok()) {
      std::printf("%-24s FAILED: %s\n", entry.image.name().c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    reductions.push_back(result->reduction_pct);
    validated += result->validated ? 1 : 0;
    if (result->reduction_pct < 10.0) {
      ++below_10;
    }
    if (result->reduction_pct >= 60.0 && result->reduction_pct <= 97.0) {
      ++band_60_97;
    }
    std::printf("%-24s %8.1f MB -> %7.1f MB   reduction %5.1f%%  [%s]\n",
                entry.image.name().c_str(),
                static_cast<double>(result->original_bytes) / (1 << 20),
                static_cast<double>(result->slim_bytes) / (1 << 20), result->reduction_pct,
                entry.family.c_str());
  }

  // Histogram, 10%-wide bins like the paper's Figure 5.
  std::printf("\nReduction histogram (10%% bins):\n");
  int bins[10] = {};
  for (double r : reductions) {
    int bin = std::min(9, static_cast<int>(r / 10.0));
    ++bins[bin];
  }
  for (int b = 0; b < 10; ++b) {
    std::printf("%3d-%3d%% | %s (%d)\n", b * 10, b * 10 + 10, std::string(bins[b], '#').c_str(),
                bins[b]);
  }

  double mean = 0;
  for (double r : reductions) {
    mean += r;
  }
  mean = reductions.empty() ? 0 : mean / reductions.size();
  std::printf("\nimages analyzed:        %zu (all validated: %s)\n", reductions.size(),
              validated == static_cast<int>(reductions.size()) ? "yes" : "NO");
  std::printf("mean reduction:         %.1f%%   (paper: 66.6%%)\n", mean);
  std::printf("images in 60-97%% band:  %d/%zu  (paper: >75%% of images)\n", band_60_97,
              reductions.size());
  std::printf("images below 10%%:       %d/%zu  (paper: 6/50, single Go binaries)\n", below_10,
              reductions.size());
  return 0;
}
