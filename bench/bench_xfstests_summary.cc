// §5.1 reproduction: the xfstests generic-group result table. Runs the 94
// ported generic tests (CntrFS mounted over tmpfs) in-process and prints the
// pass/fail surface next to the paper's: 90/94 passing, with the four
// documented deviations #228, #375, #391, #426.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace {

class SummaryListener : public ::testing::EmptyTestEventListener {
 public:
  int total = 0;
  int passed = 0;
  std::vector<std::string> failures;

  void OnTestEnd(const ::testing::TestInfo& info) override {
    ++total;
    if (info.result()->Passed()) {
      ++passed;
    } else {
      failures.push_back(std::string(info.test_suite_name()) + "." + info.name());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::GTEST_FLAG(filter) = "XfsTest.*";
  auto& listeners = ::testing::UnitTest::GetInstance()->listeners();
  delete listeners.Release(listeners.default_result_printer());
  auto* summary = new SummaryListener();
  listeners.Append(summary);

  int rc = RUN_ALL_TESTS();

  std::printf("=== xfstests generic group over CntrFS-on-tmpfs (paper 5.1) ===\n\n");
  std::printf("tests run:      %d    (paper: 94)\n", summary->total);
  std::printf("tests passed:   %d    (paper: 90 passed + 4 documented failures)\n",
              summary->passed);
  std::printf("\nThe paper's four failures are asserted as deviations and therefore\n"
              "*pass* here when CntrFS exhibits the documented non-POSIX behaviour:\n");
  std::printf("  #228  RLIMIT_FSIZE not enforced (ops replay as the server)\n");
  std::printf("  #375  SETGID not cleared on chmod (setfsuid/setfsgid delegation)\n");
  std::printf("  #391  O_DIRECT unsupported (mmap chosen over direct I/O)\n");
  std::printf("  #426  name_to_handle_at unsupported (inodes not persistent)\n");
  if (!summary->failures.empty()) {
    std::printf("\nUNEXPECTED failures (%zu):\n", summary->failures.size());
    for (const auto& name : summary->failures) {
      std::printf("  %s\n", name.c_str());
    }
  } else {
    std::printf("\nno unexpected failures — functional surface matches the paper's 90/94\n");
  }
  return rc;
}
