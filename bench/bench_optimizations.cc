// Figure 3 reproduction: effectiveness of the CNTRFS optimizations (§3.3,
// §5.2.3). Four panels, each toggling one optimization:
//   (a) read cache   (FOPEN_KEEP_CACHE)    — threaded reads, paper ~10x
//   (b) writeback    (FUSE_WRITEBACK_CACHE)— sequential writes, paper: with
//       the cache, CntrFS exceeds the native write throughput (~+65%)
//   (c) batching     (PARALLEL_DIROPS + ASYNC_READ + BATCH_FORGET)
//                                          — compilebench read, paper ~2.5x
//   (d) splice read                        — sequential reads, paper ~5%
//   (e) readdirplus  (FUSE_READDIRPLUS)    — compilebench read cold walk:
//       batched metadata replaces the per-child LOOKUP round trips behind
//       the paper's worst outliers (13.3x compilebench-read, 7.1x postmark)
//   (f) splice transport — 1MB-record sequential READ/WRITE where every
//       pass rides the request path: page refs on the channel pipe lanes
//       vs. the double-copy baseline (target >= 2x per-byte)
//   (g) adaptive I/O windows — FUSE_MAX_PAGES-negotiated 1MiB windows with
//       per-file readahead ramping vs. the legacy 128KiB fixed windows
//       (target >= 1.5x sequential), random access unchanged, and streaming
//       writes with watermark+flusher writeback vs. the old 256MB
//       flush-everything threshold (no synchronous stall).
//   (h) proxied socket throughput (§3.2.4) — the socket proxy's segment
//       path (splice moves PipeSegment references socket->pipe->socket)
//       vs. the byte-copy relay (read(2)/write(2) through a proxy buffer,
//       two page copies per hop).
//   (i) failure-plane hook overhead — fault probes, deadline stamping and
//       the admission gate armed but never firing vs. a plain mount
//       (guarded <=2%; docs/robustness.md).
//   (j) submission rings — GETATTR storm and 4KB random-read ops/sec on the
//       SQ/CQ ring transport vs. the per-request wakeup handshake
//       (target >= 1.5x on the GETATTR storm; docs/transport.md).
//       Panels (a)-(i) are pinned rings-off so their numbers stay
//       bit-identical to the pre-ring baselines.
//   (k) observability plane overhead — the panel (j) GETATTR storm and the
//       panel (f) spliced read/write with tracing off vs. on (guarded <=2%;
//       docs/observability.md). The traced runs also publish per-opcode
//       p50/p95/p99 latency from the registry histograms.
// Plus the ablation the paper explains but ships disabled: splice write.
//
// With --json <path>, every panel metric is also written as a flat JSON
// object plus a nested "obs" block (the traced GETATTR storm's full registry
// SnapshotJson); CI diffs the flat keys against bench/baselines.json (see
// bench/check_regression.py) and archives the whole artifact. With
// --metrics-json <path>, the same registry snapshot is written standalone.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/socket_proxy.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workloads/harness.h"

using namespace cntr;
using namespace cntr::workloads;
using cntr::fuse::FuseMountOptions;

namespace {

// Panels (a)-(i) predate the submission-ring transport and are regression-
// guarded bit-for-bit: they run on the wakeup path so this PR's transport
// change cannot move their numbers. Panel (j) measures the rings themselves.
FuseMountOptions OptimizedNoRings() {
  FuseMountOptions o = FuseMountOptions::Optimized();
  o.ring_enabled = false;
  return o;
}

double RunCntr(Workload& workload, const FuseMountOptions& fuse) {
  HarnessOptions opts;
  opts.fuse = fuse;
  auto side = BenchSide::MakeCntrFs(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

double RunNative(Workload& workload) {
  HarnessOptions opts;
  auto side = BenchSide::MakeNative(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

// RunCntr plus a look at the mount's registry before the kernel dies:
// per-opcode latency quantiles (microseconds, flat keys for the baseline
// diff) and the full SnapshotJson (nested into the --json artifact).
struct ObservedRun {
  double value = -1;
  std::map<std::string, double> quantiles;
  std::string snapshot_json;
};

ObservedRun RunCntrObserved(Workload& workload, const FuseMountOptions& fuse,
                            const std::vector<std::string>& ops) {
  HarnessOptions opts;
  opts.fuse = fuse;
  auto side = BenchSide::MakeCntrFs(opts);
  if (!side.ok()) {
    return {};
  }
  auto result = (*side)->Run(workload);
  ObservedRun run;
  run.value = result.ok() ? result->value : -1;
  obs::MetricsRegistry& reg = (*side)->kernel().metrics();
  for (const std::string& op : ops) {
    // The bench mount is the kernel's first, so its rollup label is "m0".
    obs::Histogram* h = reg.GetHistogram(
        "cntr_fuse_request_ns", {{"mount", "m0"}, {"op", op}, {"phase", "total"}});
    obs::Histogram::Snapshot snap = h->Snap();
    if (snap.count == 0) {
      continue;
    }
    std::string prefix = "k_" + op;
    for (char& c : prefix) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    run.quantiles[prefix + "_p50_us"] = snap.Quantile(0.50) / 1000.0;
    run.quantiles[prefix + "_p95_us"] = snap.Quantile(0.95) / 1000.0;
    run.quantiles[prefix + "_p99_us"] = snap.Quantile(0.99) / 1000.0;
  }
  run.snapshot_json = reg.SnapshotJson();
  return run;
}

constexpr uint64_t kMB = 1024 * 1024;

// --- Panel (f) workloads: the transport-bound shapes where the per-byte
// copy premium dominates.
//
// Sequential 1MB-record reads of a server-warm file. The mount runs with
// keep_cache off, so each reopen drops the kernel-side pages and every pass
// pays the full READ round-trip path while the server's cache stays hot —
// the copy-vs-splice delta in isolation, not disk time.
class SeqReadTransport : public Workload {
 public:
  SeqReadTransport(uint64_t file_mb, int passes) : file_mb_(file_mb), passes_(passes) {}

  std::string Name() const override { return "Splice panel: 1MB seq read"; }

  Status Setup(WorkloadEnv& env) override {
    CNTR_RETURN_IF_ERROR(env.WriteFileAt("splice-read.dat", file_mb_ * kMB, kMB));
    // Warm the server side (and flush writeback) with one untimed pass.
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("splice-read.dat", kernel::kORdOnly));
    CNTR_RETURN_IF_ERROR(env.ReadBack(fd, file_mb_ * kMB, kMB).status());
    return env.Close(fd);
  }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    const uint64_t size = file_mb_ * kMB;
    SimTimer timer(env.kernel().clock());
    uint64_t bytes = 0;
    for (int pass = 0; pass < passes_; ++pass) {
      CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("splice-read.dat", kernel::kORdOnly));
      CNTR_ASSIGN_OR_RETURN(uint64_t n, env.ReadBack(fd, size, kMB));
      bytes += n;
      CNTR_RETURN_IF_ERROR(env.Close(fd));
    }
    uint64_t ns = timer.ElapsedNs();
    return WorkloadResult{static_cast<double>(bytes) / kMB / (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

 private:
  uint64_t file_mb_;
  int passes_;
};

// Sequential 1MB-record writes through a write-through mount (writeback
// cache off), so every write() is an in-band WRITE round trip: gifted page
// refs on the lane vs. the user->kernel->server double copy.
class SeqWriteTransport : public Workload {
 public:
  explicit SeqWriteTransport(uint64_t file_mb) : file_mb_(file_mb) {}

  std::string Name() const override { return "Splice panel: 1MB seq write"; }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    const uint64_t size = file_mb_ * kMB;
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd,
                          env.Open("splice-write.dat",
                                   kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc));
    SimTimer timer(env.kernel().clock());
    CNTR_RETURN_IF_ERROR(env.WriteOut(fd, size, kMB));
    uint64_t ns = timer.ElapsedNs();
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    return WorkloadResult{static_cast<double>(size) / kMB / (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

 private:
  uint64_t file_mb_;
};

// --- Panel (g) workloads: window sizing, not transport. ---

// Single-pass random 4KiB reads over a server-warm file, every page visited
// at most once (cold on the kernel side). A fixed-at-ceiling readahead
// would fill up to 256 pages per miss; the ramp must collapse instead, so
// this number is window-size-insensitive.
class RandomReadTransport : public Workload {
 public:
  RandomReadTransport(uint64_t file_mb, int reads) : file_mb_(file_mb), reads_(reads) {}

  std::string Name() const override { return "Adaptive panel: 4KB random read"; }

  Status Setup(WorkloadEnv& env) override {
    CNTR_RETURN_IF_ERROR(env.WriteFileAt("adaptive-rand.dat", file_mb_ * kMB, kMB));
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("adaptive-rand.dat", kernel::kORdOnly));
    CNTR_RETURN_IF_ERROR(env.ReadBack(fd, file_mb_ * kMB, kMB).status());  // warm the server
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    env.DropCaches();
    return Status::Ok();
  }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("adaptive-rand.dat", kernel::kORdOnly));
    const uint64_t pages = file_mb_ * kMB / 4096;
    char buf[4096];
    SimTimer timer(env.kernel().clock());
    uint64_t bytes = 0;
    // Deterministic large-stride walk: offsets never sequential.
    uint64_t page = 1;
    for (int i = 0; i < reads_; ++i) {
      page = (page + pages / 2 + 3) % pages;
      CNTR_ASSIGN_OR_RETURN(size_t n,
                            env.kernel().Pread(env.proc(), fd, buf, sizeof(buf), page * 4096));
      bytes += n;
    }
    uint64_t ns = timer.ElapsedNs();
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    return WorkloadResult{static_cast<double>(bytes) / kMB / (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

 private:
  uint64_t file_mb_;
  int reads_;
};

// Streaming writeback write: dirties far more than the old 256MB
// flush-everything threshold and records the worst single write() stall —
// the flush storm the watermark+flusher design removes. The final
// close-time flush is excluded (iozone-style per-op timing).
class StreamingWriteStall : public Workload {
 public:
  explicit StreamingWriteStall(uint64_t file_mb) : file_mb_(file_mb) {}

  std::string Name() const override { return "Adaptive panel: streaming write"; }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd,
                          env.Open("streaming.dat",
                                   kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc));
    std::vector<char> buf(kMB, 's');
    max_write_stall_ns_ = 0;
    SimTimer timer(env.kernel().clock());
    for (uint64_t i = 0; i < file_mb_; ++i) {
      uint64_t before = env.kernel().clock().NowNs();
      CNTR_ASSIGN_OR_RETURN(size_t n, env.kernel().Write(env.proc(), fd, buf.data(), kMB));
      if (n != kMB) {
        return Status::Error(EIO, "short write");
      }
      max_write_stall_ns_ = std::max(max_write_stall_ns_,
                                     env.kernel().clock().NowNs() - before);
    }
    uint64_t ns = timer.ElapsedNs();
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    return WorkloadResult{static_cast<double>(file_mb_ * kMB) / kMB /
                              (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

  double max_write_stall_ms() const { return static_cast<double>(max_write_stall_ns_) * 1e-6; }

 private:
  uint64_t file_mb_;
  uint64_t max_write_stall_ns_ = 0;
};

// Aggregate MB/s of `kClients` independent processes sequentially re-reading
// their own server-warm files through one shared /dev/fuse queue (the
// paper's single-channel configuration), each on its own virtual lane. The
// queue is a serial resource: every request occupies it for the round trip
// plus server-side handling, so the window size decides how often the
// clients collide on it — the shape where FUSE_MAX_PAGES pays the most.
double RunMultiClientSeqRead(const FuseMountOptions& fuse) {
  constexpr int kClients = 4;
  constexpr uint64_t kFileBytes = 8ull << 20;
  constexpr int kPasses = 2;
  constexpr uint32_t kRecord = 1 << 20;

  HarnessOptions opts;
  opts.fuse = fuse;
  auto side = BenchSide::MakeCntrFs(opts);
  if (!side.ok()) {
    return -1;
  }
  kernel::Kernel& k = (*side)->kernel();

  std::vector<kernel::ProcessPtr> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(k.Fork(*k.init(), "seq-client"));
  }
  // Setup (untimed): write + warm-read each client's file server-side.
  std::vector<std::string> paths;
  for (int c = 0; c < kClients; ++c) {
    paths.push_back("/cntrmnt/data/bench/adaptive-mc-" + std::to_string(c) + ".dat");
    auto fd = k.Open(*clients[c], paths[c], kernel::kOWrOnly | kernel::kOCreat, 0644);
    if (!fd.ok()) {
      return -1;
    }
    std::vector<char> chunk(128 * 1024, 'm');
    for (uint64_t off = 0; off < kFileBytes; off += chunk.size()) {
      (void)k.Write(*clients[c], fd.value(), chunk.data(), chunk.size());
    }
    (void)k.Fsync(*clients[c], fd.value());
    (void)k.Close(*clients[c], fd.value());
    auto warm = k.Open(*clients[c], paths[c], kernel::kORdOnly);
    if (warm.ok()) {
      std::vector<char> buf(kRecord);
      while (true) {
        auto n = k.Read(*clients[c], warm.value(), buf.data(), buf.size());
        if (!n.ok() || n.value() == 0) {
          break;
        }
      }
      (void)k.Close(*clients[c], warm.value());
    }
  }

  std::vector<SimClock::LanePtr> lanes;
  std::atomic<uint64_t> total_bytes{0};
  for (int c = 0; c < kClients; ++c) {
    lanes.push_back(std::make_shared<SimClock::Lane>());
  }
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      SimClock::LaneScope scope(lanes[c]);
      uint64_t bytes = 0;
      std::vector<char> buf(kRecord);
      for (int pass = 0; pass < kPasses; ++pass) {
        auto fd = k.Open(*clients[c], paths[c], kernel::kORdOnly);
        if (!fd.ok()) {
          return;
        }
        while (true) {
          auto n = k.Read(*clients[c], fd.value(), buf.data(), buf.size());
          if (!n.ok() || n.value() == 0) {
            break;
          }
          bytes += n.value();
        }
        (void)k.Close(*clients[c], fd.value());
      }
      total_bytes.fetch_add(bytes);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  uint64_t makespan = 0;
  for (const auto& lane : lanes) {
    makespan = std::max(makespan, lane->local_ns.load());
  }
  k.clock().Advance(makespan);
  return makespan > 0 ? static_cast<double>(total_bytes.load()) / kMB /
                            (static_cast<double>(makespan) * 1e-9)
                      : 0;
}

// --- Panel (h): proxied socket throughput. ---
//
// One client streams `kProxyTotal` through the proxy to a host server, all
// three endpoints nonblocking and driven from this thread (RunOnce), so the
// virtual-time result is deterministic. On the segment path every byte
// crosses the proxy as two splice hops (splice_page_ns each); the copy
// relay pays two full page copies plus the same syscalls.
double RunProxyThroughput(bool segment_splice) {
  constexpr uint64_t kProxyTotal = 64ull << 20;
  auto k = kernel::Kernel::Create();
  auto container = k->Fork(*k->init(), "app-container");
  auto client_proc = k->Fork(*k->init(), "app-client");
  auto host = k->Fork(*k->init(), "x11-host");
  auto listen = k->SocketListen(*host, "/tmp/bench-host.sock");
  if (!listen.ok()) {
    return -1;
  }
  core::SocketProxy proxy(k.get(), container, host);
  proxy.SetSegmentSplice(segment_splice);
  if (!proxy.Forward("/tmp/bench-app.sock", "/tmp/bench-host.sock").ok()) {
    return -1;
  }
  auto client = k->SocketConnect(*client_proc, "/tmp/bench-app.sock");
  if (!client.ok()) {
    return -1;
  }
  kernel::Fd server = -1;
  for (int i = 0; i < 50 && server < 0; ++i) {
    proxy.RunOnce(0);
    auto conn = k->SocketAccept(*host, listen.value(), /*nonblock=*/true);
    if (conn.ok()) {
      server = conn.value();
    }
  }
  if (server < 0) {
    return -1;
  }
  for (auto [proc, fd] : {std::pair{client_proc.get(), client.value()},
                          std::pair{host.get(), server}}) {
    auto file = k->GetFile(*proc, fd);
    if (file.ok()) {
      file.value()->set_flags(file.value()->flags() | kernel::kONonblock);
    }
  }

  std::vector<char> chunk(256 * 1024, 'p');
  std::vector<char> sink(256 * 1024);
  uint64_t sent = 0;
  uint64_t received = 0;
  SimTimer timer(k->clock());
  for (uint64_t spins = 0; received < kProxyTotal; ++spins) {
    if (spins > kProxyTotal / 1024) {
      return -1;  // no forward progress
    }
    while (sent < kProxyTotal) {
      auto n = k->Write(*client_proc, client.value(), chunk.data(),
                        std::min<uint64_t>(chunk.size(), kProxyTotal - sent));
      if (!n.ok() || n.value() == 0) {
        break;  // client ring full; let the proxy move it
      }
      sent += n.value();
    }
    proxy.RunOnce(0);
    while (true) {
      auto n = k->Read(*host, server, sink.data(), sink.size());
      if (!n.ok() || n.value() == 0) {
        break;
      }
      received += n.value();
    }
  }
  uint64_t ns = timer.ElapsedNs();
  proxy.Stop();
  return ns > 0 ? static_cast<double>(received) / kMB / (static_cast<double>(ns) * 1e-9) : -1;
}

// --- Panel (j) workloads: small-op storms. ---
//
// Per-op payloads are tiny, so the per-request transport handshake IS the
// cost. This is the shape the submission rings target: sqe + doorbell + cqe
// (3250ns) against the 6000ns wakeup round trip, with multi-reap burst
// amortization on the server side. Panels (a)-(i) run rings-off; these two
// run both transports on otherwise identical mounts.

// Stat storm over a small working set with the attribute cache disabled:
// every stat() is a dcache hit plus one GETATTR round trip, nothing else —
// the purest per-request handshake measurement the mount can produce.
class GetattrStorm : public Workload {
 public:
  explicit GetattrStorm(int ops) : ops_(ops) {}

  std::string Name() const override { return "Ring panel: GETATTR storm"; }

  Status Setup(WorkloadEnv& env) override {
    for (int f = 0; f < kFiles; ++f) {
      CNTR_RETURN_IF_ERROR(env.WriteFileAt(FileName(f), 4096, 4096));
    }
    return Status::Ok();
  }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    SimTimer timer(env.kernel().clock());
    for (int i = 0; i < ops_; ++i) {
      CNTR_RETURN_IF_ERROR(
          env.kernel().Stat(env.proc(), env.Path(FileName(i % kFiles))).status());
    }
    uint64_t ns = timer.ElapsedNs();
    return WorkloadResult{static_cast<double>(ops_) / (static_cast<double>(ns) * 1e-9),
                          "ops/s", true, ns};
  }

 private:
  static constexpr int kFiles = 16;
  static std::string FileName(int f) { return "storm-" + std::to_string(f) + ".dat"; }
  int ops_;
};

// 4KB random reads, server-warm and kernel-cold (the large stride collapses
// the readahead ramp): one single-page READ round trip per op, the smallest
// data-carrying request shape.
class SmallReadStorm : public Workload {
 public:
  SmallReadStorm(uint64_t file_mb, int reads) : file_mb_(file_mb), reads_(reads) {}

  std::string Name() const override { return "Ring panel: 4KB random read"; }

  Status Setup(WorkloadEnv& env) override {
    CNTR_RETURN_IF_ERROR(env.WriteFileAt("storm-rand.dat", file_mb_ * kMB, kMB));
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("storm-rand.dat", kernel::kORdOnly));
    CNTR_RETURN_IF_ERROR(env.ReadBack(fd, file_mb_ * kMB, kMB).status());  // warm the server
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    env.DropCaches();
    return Status::Ok();
  }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("storm-rand.dat", kernel::kORdOnly));
    const uint64_t pages = file_mb_ * kMB / 4096;
    char buf[4096];
    SimTimer timer(env.kernel().clock());
    uint64_t page = 1;
    for (int i = 0; i < reads_; ++i) {
      page = (page + pages / 2 + 3) % pages;
      CNTR_RETURN_IF_ERROR(
          env.kernel().Pread(env.proc(), fd, buf, sizeof(buf), page * 4096).status());
    }
    uint64_t ns = timer.ElapsedNs();
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    return WorkloadResult{static_cast<double>(reads_) / (static_cast<double>(ns) * 1e-9),
                          "ops/s", true, ns};
  }

 private:
  uint64_t file_mb_;
  int reads_;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  const char* metrics_json_path = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_json_path = argv[i + 1];
    }
  }
  std::map<std::string, double> metrics;

  std::printf("=== Figure 3: Effectiveness of optimizations ===\n\n");

  // (a) Read cache: concurrent readers reopening the file.
  {
    auto workload = MakeThreadedIoReopen(4);
    FuseMountOptions off = OptimizedNoRings();
    off.keep_cache = false;
    FuseMountOptions on = OptimizedNoRings();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    metrics["a_read_cache_before"] = before;
    metrics["a_read_cache_after"] = after;
    std::printf("(a) Read cache (threaded read, 4 threads) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~10x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (b) Writeback cache: sequential 4KB writes vs the native baseline,
  // timed per-op as iozone does (the final close/flush is excluded).
  {
    auto workload = MakeIoZoneWriteNoClose(48);
    FuseMountOptions off = OptimizedNoRings();
    off.writeback_cache = false;
    FuseMountOptions on = OptimizedNoRings();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    metrics["b_writeback_before"] = before;
    metrics["b_writeback_after"] = after;
    metrics["b_writeback_native"] = native;
    std::printf("(b) Writeback cache (IOzone sequential write) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx   after/native %.2f"
                "   (paper: after > native, ~1.65x)\n\n",
                before, after, native, before > 0 ? after / before : 0,
                native > 0 ? after / native : 0);
  }

  // (c) Batching: compilebench read tree.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = OptimizedNoRings();
    off.parallel_dirops = false;
    off.async_read = false;
    off.batch_forget = false;
    FuseMountOptions on = OptimizedNoRings();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    metrics["c_batching_before"] = before;
    metrics["c_batching_after"] = after;
    std::printf("(c) Batching (compilebench read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~2.5x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (d) Splice read: sequential reads.
  {
    auto workload = MakeIoZone(false, 64);
    FuseMountOptions off = OptimizedNoRings();
    off.splice_read = false;
    FuseMountOptions on = OptimizedNoRings();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    metrics["d_splice_read_before"] = before;
    metrics["d_splice_read_after"] = after;
    std::printf("(d) Splice read (IOzone sequential read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %+.1f%%   (paper: ~+5%%)\n\n", before,
                after, before > 0 ? (after / before - 1) * 100 : 0);
  }

  // (e) READDIRPLUS: the cold tree walk that made compilebench-read the
  // paper's worst case. Batching each directory's metadata into
  // ⌈K/batch⌉ requests removes the per-child LOOKUP storm.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = OptimizedNoRings();
    off.readdirplus = false;
    FuseMountOptions on = OptimizedNoRings();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    metrics["e_readdirplus_before"] = before;
    metrics["e_readdirplus_after"] = after;
    std::printf("(e) READDIRPLUS (compilebench read, cold tree) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx\n\n", before, after,
                native, before > 0 ? after / before : 0);
  }

  // (f) Splice transport: pipe-backed data lanes. 1MB sequential payloads
  // where the per-byte copy premium dominates; page refs ride the channel
  // pipes (steal/alias into the cache, COW-protected) instead of being
  // copied server->kernel->user.
  {
    SeqReadTransport read_wl(/*file_mb=*/32, /*passes=*/3);
    // Both sides pinned to the legacy 32-page window (max_pages = 32): this
    // panel isolates the transport (copy vs. splice) at a fixed request
    // shape; panel (g) measures the windows themselves.
    FuseMountOptions off = OptimizedNoRings();
    off.keep_cache = false;  // each reopen re-rides the transport
    off.splice_read = false;
    off.splice_move = false;
    off.max_pages = 32;
    FuseMountOptions on = OptimizedNoRings();
    on.keep_cache = false;
    on.max_pages = 32;
    double before = RunCntr(read_wl, off);
    double after = RunCntr(read_wl, on);
    metrics["f_transport_read_copy"] = before;
    metrics["f_transport_read_splice"] = after;
    std::printf("(f) Splice transport (1MB sequential read, server-warm) [MB/s]\n");
    std::printf("    copy %.0f   splice %.0f   speedup %.2fx   (target: >=2x)\n", before, after,
                before > 0 ? after / before : 0);

    // 8MB stays under the server-side ExtFs dirty threshold (16MB), so the
    // timed phase measures the transport, not EBS writeback.
    SeqWriteTransport write_wl(/*file_mb=*/8);
    FuseMountOptions woff = OptimizedNoRings();
    woff.writeback_cache = false;     // write-through: WRITEs are in-band
    woff.max_write = 1024 * 1024;     // true 1MB WRITE round trips
    woff.splice_write = false;
    woff.splice_move = false;
    woff.max_pages = 32;
    FuseMountOptions won = OptimizedNoRings();
    won.writeback_cache = false;
    won.max_write = 1024 * 1024;
    won.pipe_pages = 256;             // lane sized to carry the 1MB payload
    won.splice_write = true;
    won.max_pages = 32;
    double wbefore = RunCntr(write_wl, woff);
    double wafter = RunCntr(write_wl, won);
    metrics["f_transport_write_copy"] = wbefore;
    metrics["f_transport_write_splice"] = wafter;
    std::printf("    1MB sequential write (write-through):\n");
    std::printf("    copy %.0f   splice %.0f   speedup %.2fx   (target: >=2x)\n\n", wbefore,
                wafter, wbefore > 0 ? wafter / wbefore : 0);
  }

  // (g) Adaptive I/O windows: FUSE_MAX_PAGES negotiation + readahead
  // ramping + watermark/flusher writeback. Sequential consumers get 1MiB
  // windows without a custom mount; random access and the copy path keep
  // their old shape (the ramp collapses, panel (f) stays pinned).
  {
    SeqReadTransport read_wl(/*file_mb=*/32, /*passes=*/3);
    FuseMountOptions legacy = OptimizedNoRings();
    legacy.keep_cache = false;
    legacy.max_pages = 0;  // 128KiB fixed-ceiling windows (pre-negotiation)
    FuseMountOptions adaptive = OptimizedNoRings();
    adaptive.keep_cache = false;  // defaults: negotiate up to 256 pages
    std::printf("(g) Adaptive I/O windows\n");

    // Sequential spliced write-through: PR 3 needed a custom mount
    // (max_write=1MB, pipe_pages=256) to post its 1MB-round-trip number;
    // negotiation now gets there from the stock mount. This is the shape
    // where the per-request hop is the dominant cost, so the window size
    // shows up ~1:1.
    SeqWriteTransport wt_wl(/*file_mb=*/8);
    FuseMountOptions wt_legacy = OptimizedNoRings();
    wt_legacy.writeback_cache = false;
    wt_legacy.splice_write = true;
    wt_legacy.max_pages = 0;  // PR 3 default mount: 128KiB max_write
    FuseMountOptions wt_adaptive = OptimizedNoRings();
    wt_adaptive.writeback_cache = false;
    wt_adaptive.splice_write = true;
    double wt_128k = RunCntr(wt_wl, wt_legacy);
    double wt_1m = RunCntr(wt_wl, wt_adaptive);
    metrics["g_wt_write_128k"] = wt_128k;
    metrics["g_wt_write_1m"] = wt_1m;
    std::printf("    1MB sequential spliced write-through [MB/s]:\n");
    std::printf("    128KiB windows %.0f   1MiB negotiated %.0f   speedup %.2fx   "
                "(target: >=1.5x)\n",
                wt_128k, wt_1m, wt_128k > 0 ? wt_1m / wt_128k : 0);

    // Sequential read: the user-visible copy (copy_page_ns per 4KiB) bounds
    // this shape — the negotiated windows amortize the round trips away and
    // land server-warm FUSE reads at native-warm parity, which caps the
    // ratio well below the write panel's.
    double seq_legacy = RunCntr(read_wl, legacy);
    double seq_adaptive = RunCntr(read_wl, adaptive);
    metrics["g_seq_read_128k"] = seq_legacy;
    metrics["g_seq_read_1m"] = seq_adaptive;
    std::printf("    1MB sequential read, single stream (server-warm) [MB/s]:\n");
    std::printf("    128KiB windows %.0f   1MiB negotiated %.0f   speedup %.2fx   "
                "(native-warm parity)\n",
                seq_legacy, seq_adaptive, seq_legacy > 0 ? seq_adaptive / seq_legacy : 0);

    // Four clients on the paper's single shared queue: the round trips the
    // big windows remove are exactly the requests the clients collide on.
    // (Real-thread arrival order adds a few percent of jitter here, so this
    // row is reported but not regression-guarded.)
    double mc_legacy = RunMultiClientSeqRead(legacy);
    double mc_adaptive = RunMultiClientSeqRead(adaptive);
    metrics["g_mc_seq_read_128k"] = mc_legacy;
    metrics["g_mc_seq_read_1m"] = mc_adaptive;
    std::printf("    4-client sequential read, one shared queue [aggregate MB/s]:\n");
    std::printf("    128KiB windows %.0f   1MiB negotiated %.0f   speedup %.2fx\n",
                mc_legacy, mc_adaptive, mc_legacy > 0 ? mc_adaptive / mc_legacy : 0);

    RandomReadTransport rand_wl(/*file_mb=*/64, /*reads=*/4096);
    double rand_legacy = RunCntr(rand_wl, legacy);
    double rand_adaptive = RunCntr(rand_wl, adaptive);
    metrics["g_rand_read_128k"] = rand_legacy;
    metrics["g_rand_read_1m"] = rand_adaptive;
    std::printf("    4KB random read (server-warm) [MB/s]:\n");
    std::printf("    128KiB ceiling %.0f   1MiB ceiling %.0f   delta %+.1f%%   "
                "(target: unchanged)\n",
                rand_legacy, rand_adaptive,
                rand_legacy > 0 ? (rand_adaptive / rand_legacy - 1) * 100 : 0);

    // Streaming write past the old 256MB threshold: the legacy config
    // (flushers off, flush-everything at the hard watermark) stalls one
    // write() for the whole drain; watermarks + background flushers keep
    // every write bounded.
    StreamingWriteStall write_old(/*file_mb=*/320);
    StreamingWriteStall write_new(/*file_mb=*/320);
    FuseMountOptions old_wb = OptimizedNoRings();
    old_wb.flusher_threads = 0;
    old_wb.dirty_soft_bytes = 256ull << 20;
    old_wb.dirty_hard_bytes = 256ull << 20;  // the old single threshold
    old_wb.per_inode_dirty_bytes = UINT64_MAX;
    FuseMountOptions new_wb = OptimizedNoRings();  // watermarks + flushers
    double wr_old = RunCntr(write_old, old_wb);
    double wr_new = RunCntr(write_new, new_wb);
    metrics["g_stream_write_old"] = wr_old;
    metrics["g_stream_write_new"] = wr_new;
    metrics["g_stream_stall_old_ms"] = write_old.max_write_stall_ms();
    metrics["g_stream_stall_new_ms"] = write_new.max_write_stall_ms();
    std::printf("    320MB streaming write, writeback [MB/s / worst write() stall]:\n");
    std::printf("    old 256MB threshold %.0f MB/s, stall %.1f ms   "
                "watermarks+flushers %.0f MB/s, stall %.1f ms   (target: no flush stall)\n\n",
                wr_old, write_old.max_write_stall_ms(), wr_new,
                write_new.max_write_stall_ms());
  }

  // (h) Proxied socket throughput: the §3.2.4 forwarding path, segment
  // splice vs. the byte-copy relay.
  {
    double copy = RunProxyThroughput(/*segment_splice=*/false);
    double spliced = RunProxyThroughput(/*segment_splice=*/true);
    metrics["h_proxy_copy"] = copy;
    metrics["h_proxy_splice"] = spliced;
    std::printf("(h) Socket proxy (64MB streamed through one forwarded connection) [MB/s]\n");
    std::printf("    copy relay %.0f   segment splice %.0f   speedup %.2fx   (target: >=2x)\n\n",
                copy, spliced, copy > 0 ? spliced / copy : 0);
  }

  // (i) Failure-plane hook overhead: the fault-injection probes, deadline
  // stamping, errseq cursors and the admission gate stay compiled into the
  // hot path (docs/robustness.md); with nothing armed they must cost <=2%.
  // The "on" side arms the whole plane without ever tripping it — generous
  // deadline, sweeper running, admission cap far above the workload's
  // concurrency — so the panel measures bookkeeping, not failures.
  {
    auto metadata_wl = MakeCompileBench("read");  // dense request path
    SeqReadTransport data_wl(/*file_mb=*/32, /*passes=*/3);
    FuseMountOptions off = OptimizedNoRings();
    FuseMountOptions on = OptimizedNoRings();
    on.request_deadline_ns = 60'000'000'000;  // 60s virtual: never expires
    on.deadline_grace_ms = 10'000;            // sweeper armed, never fires
    on.max_background = 4096;                 // gate checked, never blocks
    on.abort_after_timeouts = 8;
    FuseMountOptions data_off = off;
    data_off.keep_cache = false;  // each reopen re-rides the transport
    FuseMountOptions data_on = on;
    data_on.keep_cache = false;
    double meta_off = RunCntr(*metadata_wl, off);
    double meta_on = RunCntr(*metadata_wl, on);
    double data_off_v = RunCntr(data_wl, data_off);
    double data_on_v = RunCntr(data_wl, data_on);
    double overhead = 0;
    if (meta_off > 0 && data_off_v > 0) {
      overhead = std::max((1 - meta_on / meta_off) * 100, (1 - data_on_v / data_off_v) * 100);
    }
    metrics["i_failure_plane_meta_off"] = meta_off;
    metrics["i_failure_plane_meta_on"] = meta_on;
    metrics["i_failure_plane_data_off"] = data_off_v;
    metrics["i_failure_plane_data_on"] = data_on_v;
    metrics["i_failure_plane_overhead_pct"] = overhead;
    std::printf("(i) Failure-plane hook overhead (deadlines+gate armed, nothing fires)\n");
    std::printf("    compilebench read: plain %.0f   armed %.0f MB/s\n", meta_off, meta_on);
    std::printf("    1MB seq read:      plain %.0f   armed %.0f MB/s\n", data_off_v, data_on_v);
    std::printf("    worst overhead %.2f%%   (target: <=2%%)\n\n", overhead);
  }

  // (j) Submission rings: small-op storms, SQ/CQ ring transport vs. the
  // per-request wakeup handshake on otherwise identical mounts. Tiny
  // payloads make the handshake the dominant per-op cost, so the ring's
  // cheaper round trip (and the server's multi-reap of queued bursts) shows
  // up directly in ops/sec.
  {
    GetattrStorm storm(/*ops=*/8192);
    FuseMountOptions wakeup = OptimizedNoRings();
    wakeup.attr_ttl_ns = 0;  // every stat is a GETATTR round trip
    FuseMountOptions ring = FuseMountOptions::Optimized();
    ring.attr_ttl_ns = 0;
    double storm_wakeup = RunCntr(storm, wakeup);
    double storm_ring = RunCntr(storm, ring);
    metrics["j_getattr_storm_wakeup_ops"] = storm_wakeup;
    metrics["j_getattr_storm_ring_ops"] = storm_ring;
    metrics["j_getattr_storm_speedup"] = storm_wakeup > 0 ? storm_ring / storm_wakeup : 0;
    std::printf("(j) Submission rings (small-op storms) [ops/s]\n");
    std::printf("    GETATTR storm: wakeup %.0f   ring %.0f   speedup %.2fx   "
                "(target: >=1.5x)\n",
                storm_wakeup, storm_ring, storm_wakeup > 0 ? storm_ring / storm_wakeup : 0);

    SmallReadStorm rread(/*file_mb=*/64, /*reads=*/4096);
    FuseMountOptions rr_wakeup = OptimizedNoRings();
    FuseMountOptions rr_ring = FuseMountOptions::Optimized();
    double rread_wakeup = RunCntr(rread, rr_wakeup);
    double rread_ring = RunCntr(rread, rr_ring);
    metrics["j_rand_read_wakeup_ops"] = rread_wakeup;
    metrics["j_rand_read_ring_ops"] = rread_ring;
    std::printf("    4KB random read: wakeup %.0f   ring %.0f   speedup %.2fx\n\n",
                rread_wakeup, rread_ring,
                rread_wakeup > 0 ? rread_ring / rread_wakeup : 0);
  }

  // (k) Observability plane overhead: the same request-dense shapes as
  // panels (j) and (f), tracing off vs. on. Spans and histogram records are
  // virtual-time reads only — the plane never advances the clock — so the
  // panel numbers must be bit-identical (0.00% overhead) by construction;
  // the guard exists so an instrumentation change that starts charging
  // virtual time fails CI instead of silently skewing every other panel.
  // The traced runs double as the quantile source: per-opcode p50/p95/p99
  // from the cntr_fuse_request_ns{phase="total"} histograms.
  std::string obs_snapshot_json;
  {
    GetattrStorm storm_off_wl(/*ops=*/8192);
    GetattrStorm storm_on_wl(/*ops=*/8192);
    FuseMountOptions storm_opts = FuseMountOptions::Optimized();
    storm_opts.attr_ttl_ns = 0;  // every stat is a GETATTR round trip
    obs::SetTracingEnabled(false);
    double storm_off = RunCntr(storm_off_wl, storm_opts);
    obs::SetTracingEnabled(true);
    ObservedRun storm_on = RunCntrObserved(storm_on_wl, storm_opts, {"GETATTR", "LOOKUP"});

    // Panel (f)'s spliced shapes: payload-heavy requests where a per-request
    // instrumentation cost would be amortized worst-case small — kept in the
    // guard so the data path stays covered, not just the metadata path.
    SeqReadTransport read_off_wl(/*file_mb=*/32, /*passes=*/3);
    SeqReadTransport read_on_wl(/*file_mb=*/32, /*passes=*/3);
    FuseMountOptions read_opts = OptimizedNoRings();
    read_opts.keep_cache = false;
    read_opts.max_pages = 32;
    obs::SetTracingEnabled(false);
    double read_off = RunCntr(read_off_wl, read_opts);
    obs::SetTracingEnabled(true);
    ObservedRun read_on = RunCntrObserved(read_on_wl, read_opts, {"READ"});

    SeqWriteTransport write_off_wl(/*file_mb=*/8);
    SeqWriteTransport write_on_wl(/*file_mb=*/8);
    FuseMountOptions write_opts = OptimizedNoRings();
    write_opts.writeback_cache = false;
    write_opts.max_write = 1024 * 1024;
    write_opts.pipe_pages = 256;
    write_opts.splice_write = true;
    write_opts.max_pages = 32;
    obs::SetTracingEnabled(false);
    double write_off = RunCntr(write_off_wl, write_opts);
    obs::SetTracingEnabled(true);
    ObservedRun write_on = RunCntrObserved(write_on_wl, write_opts, {"WRITE"});

    double overhead = 0;
    if (storm_off > 0 && read_off > 0 && write_off > 0) {
      overhead = std::max({(1 - storm_on.value / storm_off) * 100,
                           (1 - read_on.value / read_off) * 100,
                           (1 - write_on.value / write_off) * 100});
    }
    metrics["k_obs_getattr_untraced_ops"] = storm_off;
    metrics["k_obs_getattr_traced_ops"] = storm_on.value;
    metrics["k_obs_read_untraced"] = read_off;
    metrics["k_obs_read_traced"] = read_on.value;
    metrics["k_obs_write_untraced"] = write_off;
    metrics["k_obs_write_traced"] = write_on.value;
    metrics["k_obs_overhead_pct"] = overhead;
    for (const auto* run : {&storm_on, &read_on, &write_on}) {
      for (const auto& [key, value] : run->quantiles) {
        metrics[key] = value;
      }
    }
    obs_snapshot_json = storm_on.snapshot_json;
    std::printf("(k) Observability plane overhead (tracing off vs. on)\n");
    std::printf("    GETATTR storm: untraced %.0f   traced %.0f ops/s\n", storm_off,
                storm_on.value);
    std::printf("    1MB spliced read:  untraced %.0f   traced %.0f MB/s\n", read_off,
                read_on.value);
    std::printf("    1MB spliced write: untraced %.0f   traced %.0f MB/s\n", write_off,
                write_on.value);
    std::printf("    worst overhead %.2f%%   (target: <=2%%; 0.00 by construction)\n",
                overhead);
    auto q = [&](const char* key) {
      auto it = metrics.find(key);
      return it != metrics.end() ? it->second : 0.0;
    };
    std::printf("    GETATTR p50/p95/p99: %.1f / %.1f / %.1f us   "
                "READ: %.0f / %.0f / %.0f us   WRITE: %.0f / %.0f / %.0f us\n\n",
                q("k_getattr_p50_us"), q("k_getattr_p95_us"), q("k_getattr_p99_us"),
                q("k_read_p50_us"), q("k_read_p95_us"), q("k_read_p99_us"),
                q("k_write_p50_us"), q("k_write_p95_us"), q("k_write_p99_us"));
  }

  // Ablation: splice write — implemented but disabled by default because
  // parsing the header after the pipe costs every request a hop (§3.3).
  {
    auto read_tree = MakeCompileBench("read");
    FuseMountOptions off = OptimizedNoRings();
    FuseMountOptions on = OptimizedNoRings();
    on.splice_write = true;
    double without = RunCntr(*read_tree, off);
    double with = RunCntr(*read_tree, on);
    metrics["ablation_splice_write_off"] = without;
    metrics["ablation_splice_write_on"] = with;
    std::printf("(ablation) Splice write on a non-write workload [MB/s]\n");
    std::printf("    off %.0f   on %.0f   regression %.1f%%   (paper: slows all ops; default "
                "off)\n",
                without, with, without > 0 ? (1 - with / without) * 100 : 0);
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    for (const auto& [key, value] : metrics) {
      std::fprintf(f, "  \"%s\": %.3f,\n", key.c_str(), value);
    }
    // The traced GETATTR storm's full registry snapshot, nested so the
    // flat panel keys stay the regression-diff surface while the artifact
    // still archives every series (check_regression.py sanity-checks it).
    std::fprintf(f, "  \"obs\": %s\n",
                 obs_snapshot_json.empty() ? "{}" : obs_snapshot_json.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  if (metrics_json_path != nullptr) {
    FILE* f = std::fopen(metrics_json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json_path);
      return 1;
    }
    std::fprintf(f, "%s\n", obs_snapshot_json.empty() ? "{}" : obs_snapshot_json.c_str());
    std::fclose(f);
  }
  return 0;
}
