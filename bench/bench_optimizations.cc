// Figure 3 reproduction: effectiveness of the CNTRFS optimizations (§3.3,
// §5.2.3). Four panels, each toggling one optimization:
//   (a) read cache   (FOPEN_KEEP_CACHE)    — threaded reads, paper ~10x
//   (b) writeback    (FUSE_WRITEBACK_CACHE)— sequential writes, paper: with
//       the cache, CntrFS exceeds the native write throughput (~+65%)
//   (c) batching     (PARALLEL_DIROPS + ASYNC_READ + BATCH_FORGET)
//                                          — compilebench read, paper ~2.5x
//   (d) splice read                        — sequential reads, paper ~5%
//   (e) readdirplus  (FUSE_READDIRPLUS)    — compilebench read cold walk:
//       batched metadata replaces the per-child LOOKUP round trips behind
//       the paper's worst outliers (13.3x compilebench-read, 7.1x postmark)
//   (f) splice transport — 1MB-record sequential READ/WRITE where every
//       pass rides the request path: page refs on the channel pipe lanes
//       vs. the double-copy baseline (target >= 2x per-byte)
// Plus the ablation the paper explains but ships disabled: splice write.
#include <cstdio>

#include "src/workloads/harness.h"

using namespace cntr;
using namespace cntr::workloads;
using cntr::fuse::FuseMountOptions;

namespace {

double RunCntr(Workload& workload, const FuseMountOptions& fuse) {
  HarnessOptions opts;
  opts.fuse = fuse;
  auto side = BenchSide::MakeCntrFs(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

double RunNative(Workload& workload) {
  HarnessOptions opts;
  auto side = BenchSide::MakeNative(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

constexpr uint64_t kMB = 1024 * 1024;

// --- Panel (f) workloads: the transport-bound shapes where the per-byte
// copy premium dominates.
//
// Sequential 1MB-record reads of a server-warm file. The mount runs with
// keep_cache off, so each reopen drops the kernel-side pages and every pass
// pays the full READ round-trip path while the server's cache stays hot —
// the copy-vs-splice delta in isolation, not disk time.
class SeqReadTransport : public Workload {
 public:
  SeqReadTransport(uint64_t file_mb, int passes) : file_mb_(file_mb), passes_(passes) {}

  std::string Name() const override { return "Splice panel: 1MB seq read"; }

  Status Setup(WorkloadEnv& env) override {
    CNTR_RETURN_IF_ERROR(env.WriteFileAt("splice-read.dat", file_mb_ * kMB, kMB));
    // Warm the server side (and flush writeback) with one untimed pass.
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("splice-read.dat", kernel::kORdOnly));
    CNTR_RETURN_IF_ERROR(env.ReadBack(fd, file_mb_ * kMB, kMB).status());
    return env.Close(fd);
  }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    const uint64_t size = file_mb_ * kMB;
    SimTimer timer(env.kernel().clock());
    uint64_t bytes = 0;
    for (int pass = 0; pass < passes_; ++pass) {
      CNTR_ASSIGN_OR_RETURN(kernel::Fd fd, env.Open("splice-read.dat", kernel::kORdOnly));
      CNTR_ASSIGN_OR_RETURN(uint64_t n, env.ReadBack(fd, size, kMB));
      bytes += n;
      CNTR_RETURN_IF_ERROR(env.Close(fd));
    }
    uint64_t ns = timer.ElapsedNs();
    return WorkloadResult{static_cast<double>(bytes) / kMB / (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

 private:
  uint64_t file_mb_;
  int passes_;
};

// Sequential 1MB-record writes through a write-through mount (writeback
// cache off), so every write() is an in-band WRITE round trip: gifted page
// refs on the lane vs. the user->kernel->server double copy.
class SeqWriteTransport : public Workload {
 public:
  explicit SeqWriteTransport(uint64_t file_mb) : file_mb_(file_mb) {}

  std::string Name() const override { return "Splice panel: 1MB seq write"; }

  StatusOr<WorkloadResult> Run(WorkloadEnv& env) override {
    const uint64_t size = file_mb_ * kMB;
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd,
                          env.Open("splice-write.dat",
                                   kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc));
    SimTimer timer(env.kernel().clock());
    CNTR_RETURN_IF_ERROR(env.WriteOut(fd, size, kMB));
    uint64_t ns = timer.ElapsedNs();
    CNTR_RETURN_IF_ERROR(env.Close(fd));
    return WorkloadResult{static_cast<double>(size) / kMB / (static_cast<double>(ns) * 1e-9),
                          "MB/s", true, ns};
  }

 private:
  uint64_t file_mb_;
};

}  // namespace

int main() {
  std::printf("=== Figure 3: Effectiveness of optimizations ===\n\n");

  // (a) Read cache: concurrent readers reopening the file.
  {
    auto workload = MakeThreadedIoReopen(4);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.keep_cache = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(a) Read cache (threaded read, 4 threads) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~10x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (b) Writeback cache: sequential 4KB writes vs the native baseline,
  // timed per-op as iozone does (the final close/flush is excluded).
  {
    auto workload = MakeIoZoneWriteNoClose(48);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.writeback_cache = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    std::printf("(b) Writeback cache (IOzone sequential write) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx   after/native %.2f"
                "   (paper: after > native, ~1.65x)\n\n",
                before, after, native, before > 0 ? after / before : 0,
                native > 0 ? after / native : 0);
  }

  // (c) Batching: compilebench read tree.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.parallel_dirops = false;
    off.async_read = false;
    off.batch_forget = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(c) Batching (compilebench read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~2.5x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (d) Splice read: sequential reads.
  {
    auto workload = MakeIoZone(false, 64);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.splice_read = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(d) Splice read (IOzone sequential read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %+.1f%%   (paper: ~+5%%)\n\n", before,
                after, before > 0 ? (after / before - 1) * 100 : 0);
  }

  // (e) READDIRPLUS: the cold tree walk that made compilebench-read the
  // paper's worst case. Batching each directory's metadata into
  // ⌈K/batch⌉ requests removes the per-child LOOKUP storm.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.readdirplus = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    std::printf("(e) READDIRPLUS (compilebench read, cold tree) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx\n\n", before, after,
                native, before > 0 ? after / before : 0);
  }

  // (f) Splice transport: pipe-backed data lanes. 1MB sequential payloads
  // where the per-byte copy premium dominates; page refs ride the channel
  // pipes (steal/alias into the cache, COW-protected) instead of being
  // copied server->kernel->user.
  {
    SeqReadTransport read_wl(/*file_mb=*/32, /*passes=*/3);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.keep_cache = false;  // each reopen re-rides the transport
    off.splice_read = false;
    off.splice_move = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    on.keep_cache = false;
    double before = RunCntr(read_wl, off);
    double after = RunCntr(read_wl, on);
    std::printf("(f) Splice transport (1MB sequential read, server-warm) [MB/s]\n");
    std::printf("    copy %.0f   splice %.0f   speedup %.2fx   (target: >=2x)\n", before, after,
                before > 0 ? after / before : 0);

    // 8MB stays under the server-side ExtFs dirty threshold (16MB), so the
    // timed phase measures the transport, not EBS writeback.
    SeqWriteTransport write_wl(/*file_mb=*/8);
    FuseMountOptions woff = FuseMountOptions::Optimized();
    woff.writeback_cache = false;     // write-through: WRITEs are in-band
    woff.max_write = 1024 * 1024;     // true 1MB WRITE round trips
    woff.splice_write = false;
    woff.splice_move = false;
    FuseMountOptions won = FuseMountOptions::Optimized();
    won.writeback_cache = false;
    won.max_write = 1024 * 1024;
    won.pipe_pages = 256;             // lane sized to carry the 1MB payload
    won.splice_write = true;
    double wbefore = RunCntr(write_wl, woff);
    double wafter = RunCntr(write_wl, won);
    std::printf("    1MB sequential write (write-through):\n");
    std::printf("    copy %.0f   splice %.0f   speedup %.2fx   (target: >=2x)\n\n", wbefore,
                wafter, wbefore > 0 ? wafter / wbefore : 0);
  }

  // Ablation: splice write — implemented but disabled by default because
  // parsing the header after the pipe costs every request a hop (§3.3).
  {
    auto read_tree = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    FuseMountOptions on = FuseMountOptions::Optimized();
    on.splice_write = true;
    double without = RunCntr(*read_tree, off);
    double with = RunCntr(*read_tree, on);
    std::printf("(ablation) Splice write on a non-write workload [MB/s]\n");
    std::printf("    off %.0f   on %.0f   regression %.1f%%   (paper: slows all ops; default "
                "off)\n",
                without, with, without > 0 ? (1 - with / without) * 100 : 0);
  }
  return 0;
}
