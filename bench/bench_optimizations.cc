// Figure 3 reproduction: effectiveness of the CNTRFS optimizations (§3.3,
// §5.2.3). Four panels, each toggling one optimization:
//   (a) read cache   (FOPEN_KEEP_CACHE)    — threaded reads, paper ~10x
//   (b) writeback    (FUSE_WRITEBACK_CACHE)— sequential writes, paper: with
//       the cache, CntrFS exceeds the native write throughput (~+65%)
//   (c) batching     (PARALLEL_DIROPS + ASYNC_READ + BATCH_FORGET)
//                                          — compilebench read, paper ~2.5x
//   (d) splice read                        — sequential reads, paper ~5%
//   (e) readdirplus  (FUSE_READDIRPLUS)    — compilebench read cold walk:
//       batched metadata replaces the per-child LOOKUP round trips behind
//       the paper's worst outliers (13.3x compilebench-read, 7.1x postmark)
// Plus the ablation the paper explains but ships disabled: splice write.
#include <cstdio>

#include "src/workloads/harness.h"

using namespace cntr::workloads;
using cntr::fuse::FuseMountOptions;

namespace {

double RunCntr(Workload& workload, const FuseMountOptions& fuse) {
  HarnessOptions opts;
  opts.fuse = fuse;
  auto side = BenchSide::MakeCntrFs(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

double RunNative(Workload& workload) {
  HarnessOptions opts;
  auto side = BenchSide::MakeNative(opts);
  if (!side.ok()) {
    return -1;
  }
  auto result = (*side)->Run(workload);
  return result.ok() ? result->value : -1;
}

}  // namespace

int main() {
  std::printf("=== Figure 3: Effectiveness of optimizations ===\n\n");

  // (a) Read cache: concurrent readers reopening the file.
  {
    auto workload = MakeThreadedIoReopen(4);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.keep_cache = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(a) Read cache (threaded read, 4 threads) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~10x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (b) Writeback cache: sequential 4KB writes vs the native baseline,
  // timed per-op as iozone does (the final close/flush is excluded).
  {
    auto workload = MakeIoZoneWriteNoClose(48);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.writeback_cache = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    std::printf("(b) Writeback cache (IOzone sequential write) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx   after/native %.2f"
                "   (paper: after > native, ~1.65x)\n\n",
                before, after, native, before > 0 ? after / before : 0,
                native > 0 ? after / native : 0);
  }

  // (c) Batching: compilebench read tree.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.parallel_dirops = false;
    off.async_read = false;
    off.batch_forget = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(c) Batching (compilebench read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %.1fx   (paper: ~2.5x)\n\n", before,
                after, before > 0 ? after / before : 0);
  }

  // (d) Splice read: sequential reads.
  {
    auto workload = MakeIoZone(false, 64);
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.splice_read = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    std::printf("(d) Splice read (IOzone sequential read) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   speedup %+.1f%%   (paper: ~+5%%)\n\n", before,
                after, before > 0 ? (after / before - 1) * 100 : 0);
  }

  // (e) READDIRPLUS: the cold tree walk that made compilebench-read the
  // paper's worst case. Batching each directory's metadata into
  // ⌈K/batch⌉ requests removes the per-child LOOKUP storm.
  {
    auto workload = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    off.readdirplus = false;
    FuseMountOptions on = FuseMountOptions::Optimized();
    double before = RunCntr(*workload, off);
    double after = RunCntr(*workload, on);
    double native = RunNative(*workload);
    std::printf("(e) READDIRPLUS (compilebench read, cold tree) [MB/s]\n");
    std::printf("    before %.0f   after %.0f   native %.0f   speedup %.1fx\n\n", before, after,
                native, before > 0 ? after / before : 0);
  }

  // Ablation: splice write — implemented but disabled by default because
  // parsing the header after the pipe costs every request a hop (§3.3).
  {
    auto read_tree = MakeCompileBench("read");
    FuseMountOptions off = FuseMountOptions::Optimized();
    FuseMountOptions on = FuseMountOptions::Optimized();
    on.splice_write = true;
    double without = RunCntr(*read_tree, off);
    double with = RunCntr(*read_tree, on);
    std::printf("(ablation) Splice write on a non-write workload [MB/s]\n");
    std::printf("    off %.0f   on %.0f   regression %.1f%%   (paper: slows all ops; default "
                "off)\n",
                without, with, without > 0 ? (1 - with / without) * 100 : 0);
  }
  return 0;
}
