// Attach reconnect (docs/robustness.md): after a server-side crash aborts
// the FUSE transport, a fresh connection over the SAME CntrFsServer restores
// service — INIT replayed, live file handles re-opened by nodeid — and the
// kill-at-op-N sweep drives every injection point in the catalogue through a
// mixed workload, asserting the stack always degrades (completes or errors)
// instead of hanging or leaking lane capacity.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/container/engine.h"
#include "src/core/attach.h"
#include "src/core/cntrfs.h"
#include "src/fault/fault.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fault {
namespace {

class ReconnectTest : public ::testing::Test {
 protected:
  void Mount(fuse::FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    fuse::RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    fuse_server_ = std::make_unique<fuse::FuseServer>(dev->second, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = fuse::MountFuse(kernel_.get(), *kernel_->init(), "/m", dev->second, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  // Replacement transport over the same CntrFsServer: new /dev/fuse
  // connection, new server threads, FuseFs::Reconnect.
  void DoReconnect() {
    fuse_server_->Stop(/*notify_destroy=*/false);
    auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    fuse_server_ = std::make_unique<fuse::FuseServer>(dev->second, cntrfs_.get(), 2);
    fuse_server_->Start();
    Status rc = fuse_fs_->Reconnect(dev->second);
    ASSERT_TRUE(rc.ok()) << rc.ToString();
  }

  void TearDownMount() {
    if (kernel_ != nullptr) {
      kernel_->faults().DisarmAll();
    }
    if (fuse_fs_ != nullptr) {
      (void)fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
    fuse_fs_.reset();
    fuse_server_.reset();
    cntrfs_.reset();
    proc_.reset();
    server_proc_.reset();
    kernel_.reset();
  }

  void TearDown() override { TearDownMount(); }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<fuse::FuseServer> fuse_server_;
  std::shared_ptr<fuse::FuseFs> fuse_fs_;
};

TEST_F(ReconnectTest, ReconnectRestoresServiceAndReopensLiveHandles) {
  Mount(fuse::FuseMountOptions::Optimized());
  auto fd = kernel_->Open(*proc_, "/m/tmp/survivor", kernel::kORdWr | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), "hello", 5).ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());

  // Crash: the server threads die and take the transport with them.
  fuse_server_->Stop(/*notify_destroy=*/false);
  ASSERT_TRUE(fuse_fs_->conn().aborted());
  // Cached attributes may still answer within their TTL; anything needing a
  // round trip sees the dead mount.
  EXPECT_EQ(kernel_->Stat(*proc_, "/m/tmp/uncached-name").error(), EIO);

  DoReconnect();

  // Metadata service is back, through the surviving node table.
  auto attr = kernel_->Stat(*proc_, "/m/tmp/survivor");
  ASSERT_TRUE(attr.ok()) << attr.status().ToString();
  EXPECT_EQ(attr->size, 5u);

  // The fd opened before the crash was re-opened by nodeid: it still
  // writes (at its old offset) and fsyncs through the new connection.
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), " again", 6).ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());

  auto rfd = kernel_->Open(*proc_, "/m/tmp/survivor", kernel::kORdOnly);
  ASSERT_TRUE(rfd.ok());
  char buf[32] = {};
  auto n = kernel_->Read(*proc_, rfd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "hello again");
  ASSERT_TRUE(kernel_->Close(*proc_, rfd.value()).ok());

  EXPECT_EQ(fuse_fs_->conn().lane_bytes_in_flight(), 0u);
}

TEST_F(ReconnectTest, ReconnectRejectsALiveConnection) {
  Mount(fuse::FuseMountOptions::Optimized());
  auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
  ASSERT_TRUE(dev.ok());
  // The old connection is still healthy: adopting a replacement now would
  // strand its in-flight requests. The precondition is enforced.
  EXPECT_EQ(fuse_fs_->Reconnect(dev->second).error(), EINVAL);
  EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp").ok()) << "the live mount must be untouched";
}

// The acceptance sweep: for every injection point compiled into the stack,
// fire it at the Nth hit while a mixed workload runs. The workload may see
// errors — that is the point — but it must complete (no hangs), leave no
// lane bytes parked, and the mount must either stay healthy or be revivable
// via reconnect.
TEST_F(ReconnectTest, KillAtOpNSweepDegradesCleanlyEverywhere) {
  fuse::FuseMountOptions opts = fuse::FuseMountOptions::Optimized();
  // The deadline plane resolves dropped replies; two misses abort (a dead
  // mount answers EIO instead of timing out forever).
  opts.request_deadline_ns = 200'000;
  opts.deadline_grace_ms = 20;
  opts.abort_after_timeouts = 2;

  for (const std::string& point : FaultRegistry::Points()) {
    for (uint64_t n : {uint64_t{1}, uint64_t{3}}) {
      SCOPED_TRACE(point + " @ op " + std::to_string(n));
      TearDownMount();
      Mount(opts);

      FaultSpec spec;
      // The worker loop honours kKill (the thread dies and aborts the
      // connection); everywhere else a hard error exercises the same
      // degradation surface without leaving anything un-joinable.
      spec.action = point == "fuse.server.worker" ? FaultAction::kKill : FaultAction::kFail;
      spec.error = EIO;
      spec.fail_at = n;
      spec.one_shot = true;
      kernel_->faults().Arm(point, spec);

      // Mixed workload; every op may fail, none may hang.
      (void)kernel_->Mkdir(*proc_, "/m/tmp/w", 0755);
      for (int i = 0; i < 4; ++i) {
        std::string path = "/m/tmp/w/f" + std::to_string(i);
        auto fd = kernel_->Open(*proc_, path, kernel::kORdWr | kernel::kOCreat, 0644);
        if (fd.ok()) {
          std::string data(8192, 'x');
          (void)kernel_->Write(*proc_, fd.value(), data.data(), data.size());
          (void)kernel_->Fsync(*proc_, fd.value());
          char buf[4096];
          (void)kernel_->Read(*proc_, fd.value(), buf, sizeof(buf));
          (void)kernel_->Close(*proc_, fd.value());
        }
        (void)kernel_->Stat(*proc_, path);
      }
      auto dir = kernel_->Open(*proc_, "/m/tmp/w", kernel::kORdOnly);
      if (dir.ok()) {
        (void)kernel_->Getdents(*proc_, dir.value());
        (void)kernel_->Close(*proc_, dir.value());
      }
      (void)kernel_->Unlink(*proc_, "/m/tmp/w/f0");

      kernel_->faults().DisarmAll();
      EXPECT_EQ(fuse_fs_->conn().lane_bytes_in_flight(), 0u)
          << "in-flight lane capacity leaked";

      if (fuse_fs_->conn().aborted()) {
        DoReconnect();
      }
      // Whichever path we took, the mount serves again.
      auto check = kernel_->Open(*proc_, "/m/tmp/alive", kernel::kOWrOnly | kernel::kOCreat,
                                 0644);
      ASSERT_TRUE(check.ok()) << check.status().ToString();
      ASSERT_TRUE(kernel_->Write(*proc_, check.value(), "ok", 2).ok());
      ASSERT_TRUE(kernel_->Fsync(*proc_, check.value()).ok());
      ASSERT_TRUE(kernel_->Close(*proc_, check.value()).ok());
      EXPECT_EQ(fuse_fs_->conn().lane_bytes_in_flight(), 0u);
    }
  }
}

// --- admission-gate vs. reconnect races ---

// Regression: a waiter parked on a full admission gate used to stay parked
// when the connection died under it — Reconnect's first step (abort) never
// reached the gate, and FinishInFlight skipped its notify once the cap was
// reconfigured to 0. Both the abort and any cap change must wake parked
// waiters; an abort-woken waiter resolves with ENOTCONN instead of
// re-parking.
TEST(AdmissionGateTest, AbortWakesParkedAdmissionWaitersWithEnotconn) {
  SimClock clock;
  CostModel costs;
  fuse::FuseConn conn(&clock, &costs, 1);
  conn.SetMaxBackground(1);

  std::atomic<int> enotconn{0};
  // First request occupies the whole gate and waits for a reply that never
  // comes (nobody is serving).
  std::thread first([&] {
    fuse::FuseRequest req;
    req.opcode = fuse::FuseOpcode::kGetattr;
    req.pid = 1;
    if (conn.SendAndWait(std::move(req)).error() == ENOTCONN) {
      enotconn.fetch_add(1);
    }
  });
  while (conn.channel_queue_depth(0) == 0) {
    std::this_thread::yield();
  }
  // Second request parks on the admission gate.
  std::thread second([&] {
    fuse::FuseRequest req;
    req.opcode = fuse::FuseOpcode::kGetattr;
    req.pid = 2;
    if (conn.SendAndWait(std::move(req)).error() == ENOTCONN) {
      enotconn.fetch_add(1);
    }
  });
  while (conn.stats().admission_waits == 0) {
    std::this_thread::yield();
  }
  // What Reconnect does first when the transport is being replaced.
  conn.Abort();
  first.join();
  second.join();
  EXPECT_EQ(enotconn.load(), 2)
      << "the parked waiter must resolve with ENOTCONN, not hang";
}

TEST(AdmissionGateTest, DisarmingTenantBudgetReleasesParkedWaiters) {
  SimClock clock;
  CostModel costs;
  fuse::FuseConn conn(&clock, &costs, 1);
  // The pool's per-tenant budget layers under the mount's own gate: the
  // effective cap is the tighter of the two.
  conn.SetMaxBackground(4);
  conn.SetAdmissionBudget(1);

  std::atomic<int> ok{0};
  std::thread first([&] {
    fuse::FuseRequest req;
    req.opcode = fuse::FuseOpcode::kGetattr;
    req.pid = 1;
    if (conn.SendAndWait(std::move(req)).ok()) {
      ok.fetch_add(1);
    }
  });
  while (conn.channel_queue_depth(0) == 0) {
    std::this_thread::yield();
  }
  std::thread second([&] {
    fuse::FuseRequest req;
    req.opcode = fuse::FuseOpcode::kGetattr;
    req.pid = 2;
    if (conn.SendAndWait(std::move(req)).ok()) {
      ok.fetch_add(1);
    }
  });
  while (conn.stats().admission_waits == 0) {
    std::this_thread::yield();
  }
  // Lifting the budget must release the parked waiter (the wider
  // max_background now governs); it proceeds to enqueue.
  conn.SetAdmissionBudget(0);
  while (conn.channel_queue_depth(0) < 2) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 2; ++i) {
    auto req = conn.ReadRequest(0);
    ASSERT_TRUE(req.has_value());
    conn.WriteReply(req->unique, fuse::FuseReply{});
  }
  first.join();
  second.join();
  EXPECT_EQ(ok.load(), 2);
  conn.Abort();
}

// --- the full attach stack ---

container::Image MakeAppImage() {
  container::Image image("app/mysql", "slim");
  container::Layer layer;
  layer.id = "app-mysql";
  layer.files.push_back(container::ImageFile{"/usr/bin/mysql", 12 << 20, 0755,
                                             container::FileClass::kAppBinary, ""});
  layer.files.push_back(container::ImageFile{"/etc/mysql.conf", 0, 0644,
                                             container::FileClass::kConfig, "port=5432\n"});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/mysql";
  image.env()["PATH"] = "/usr/bin:/bin";
  return image;
}

TEST(AttachReconnectTest, SessionSurvivesServerRestart) {
  auto kernel = kernel::Kernel::Create();
  auto runtime = std::make_unique<container::ContainerRuntime>(kernel.get());
  auto registry = std::make_unique<container::Registry>(&kernel->clock());
  auto docker = std::make_shared<container::DockerEngine>(runtime.get(), registry.get());
  auto cntr = std::make_unique<core::Cntr>(kernel.get());
  cntr->RegisterEngine(docker);

  auto db = docker->Run("db", MakeAppImage());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto session_or = cntr->Attach("docker", "db");
  ASSERT_TRUE(session_or.ok()) << session_or.status().ToString();
  auto& session = *session_or.value();

  EXPECT_EQ(session.Execute("cat /var/lib/cntr/etc/mysql.conf"), "port=5432\n");

  // Crash the transport out from under the live session.
  session.fuse_fs()->conn().Abort();
  Status rc = session.Reconnect();
  ASSERT_TRUE(rc.ok()) << rc.ToString();

  // The shell works again over the replacement transport — same nodeids,
  // same mounted view.
  EXPECT_EQ(session.Execute("cat /var/lib/cntr/etc/mysql.conf"), "port=5432\n");
  EXPECT_TRUE(session.Detach().ok());
}

}  // namespace
}  // namespace cntr::fault
