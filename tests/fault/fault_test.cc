// Failure-semantics tests (docs/robustness.md): the fault-injection
// registry itself, then the request lifecycle hardening observed through it
// — deadlines + the real-time sweeper, FUSE_INTERRUPT, the max_background
// admission gate, crash-abort EIO degradation, errseq-style writeback error
// reporting (exactly once per fd, surfaced by fsync/close/detach), flusher
// fault handling, and the socket proxy's transient-accept backoff.
#include "src/fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/core/cntrfs.h"
#include "src/core/socket_proxy.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fault {
namespace {

// --- the registry itself ---

TEST(FaultRegistryTest, UnarmedPointsNeverFire) {
  FaultRegistry reg;
  EXPECT_FALSE(reg.AnyArmed());
  EXPECT_FALSE(reg.Check("cntrfs.dispatch"));
  EXPECT_EQ(reg.Hits("cntrfs.dispatch"), 0u);
}

TEST(FaultRegistryTest, FailAtFiresOnExactlyTheNthHit) {
  FaultRegistry reg;
  FaultSpec spec;
  spec.fail_at = 3;
  spec.error = ENOSPC;
  reg.Arm("p", spec);
  EXPECT_FALSE(reg.Check("p"));
  EXPECT_FALSE(reg.Check("p"));
  auto hit = reg.Check("p");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.error, ENOSPC);
  EXPECT_FALSE(reg.Check("p")) << "fail_at is the Nth hit only, not every hit from N on";
  EXPECT_EQ(reg.Hits("p"), 4u);
  EXPECT_EQ(reg.Fired("p"), 1u);
}

TEST(FaultRegistryTest, FailEveryFiresPeriodically) {
  FaultRegistry reg;
  FaultSpec spec;
  spec.fail_every = 2;
  reg.Arm("p", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (reg.Check("p")) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 5);
}

TEST(FaultRegistryTest, OneShotDisarmsAfterFiring) {
  FaultRegistry reg;
  FaultSpec spec;
  spec.one_shot = true;
  reg.Arm("p", spec);
  EXPECT_TRUE(reg.AnyArmed());
  EXPECT_TRUE(reg.Check("p"));
  EXPECT_FALSE(reg.AnyArmed()) << "one_shot must disarm the point after firing";
  EXPECT_FALSE(reg.Check("p"));
}

TEST(FaultRegistryTest, ProbabilisticScheduleIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultRegistry reg(seed);
    FaultSpec spec;
    spec.probability = 0.5;
    reg.Arm("p", spec);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(reg.Check("p") ? 'F' : '.');
    }
    return pattern;
  };
  EXPECT_EQ(run(7), run(7)) << "same seed must reproduce the same fire pattern";
  EXPECT_NE(run(7), run(8)) << "different seeds must diverge";
  EXPECT_NE(run(7).find('F'), std::string::npos);
  EXPECT_NE(run(7).find('.'), std::string::npos);
}

TEST(FaultRegistryTest, ArmResetsTheHitCounter) {
  FaultRegistry reg;
  FaultSpec spec;
  spec.fail_at = 2;
  reg.Arm("p", spec);
  EXPECT_FALSE(reg.Check("p"));
  reg.Arm("p", spec);  // re-arm: fail_at counts from here again
  EXPECT_FALSE(reg.Check("p"));
  EXPECT_TRUE(reg.Check("p"));
}

TEST(FaultRegistryTest, CatalogueListsEveryCompiledInPoint) {
  // The sweep tests iterate this catalogue; every injection point linked
  // into this binary must be discoverable through it.
  auto points = FaultRegistry::Points();
  for (const char* want :
       {"kernel.splice", "kernel.vmsplice", "kernel.socket.accept", "kernel.socket.connect",
        "fuse.conn.enqueue", "fuse.conn.reply", "fuse.lane.transit", "fuse.server.worker",
        "fuse.flusher", "cntrfs.dispatch", "proxy.accept", "proxy.pump"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), want), points.end())
        << "missing injection point: " << want;
  }
}

// --- transport-level failure plane (FuseConn alone, manual server) ---

using fuse::FuseConn;
using fuse::FuseOpcode;
using fuse::FuseReply;
using fuse::FuseRequest;

TEST(FaultTransportTest, EnqueueFaultFailsTheSendWithoutAServer) {
  SimClock clock;
  CostModel costs;
  FaultRegistry faults;
  FuseConn conn(&clock, &costs, 1, &faults);
  FaultSpec spec;
  spec.error = ENODEV;
  faults.Arm("fuse.conn.enqueue", spec);
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENODEV);
  conn.Abort();
}

TEST(FaultTransportTest, SweeperExpiresWedgedRequestsWithEtimedout) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  // 1ms virtual deadline, 20ms wall grace: with no server attached the
  // virtual clock never moves, so only the real-time sweeper can save us.
  conn.SetRequestDeadline(1'000'000, /*real_grace_ms=*/20);
  uint64_t before = clock.NowNs();
  auto reply = conn.SendAndWait(FuseRequest{});
  EXPECT_EQ(reply.error(), ETIMEDOUT);
  EXPECT_GE(conn.stats().timeouts, 1u);
  // The waiter charges the deadline to its own timeline: the wait was real.
  EXPECT_GE(clock.NowNs() - before, 1'000'000u);
  conn.Abort();
}

TEST(FaultTransportTest, LateReplyIsDroppedAndWaiterTimesOut) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  conn.SetRequestDeadline(100'000, /*real_grace_ms=*/0);  // virtual-only
  std::thread server([&] {
    auto req = conn.ReadRequest();
    if (!req.has_value()) {
      return;
    }
    clock.Advance(1'000'000);  // blow past the virtual deadline, then reply
    conn.WriteReply(req->unique, FuseReply{});
  });
  auto reply = conn.SendAndWait(FuseRequest{});
  server.join();
  EXPECT_EQ(reply.error(), ETIMEDOUT);
  EXPECT_EQ(conn.stats().late_replies, 1u);
  EXPECT_GE(conn.stats().timeouts, 1u);
  conn.Abort();
}

TEST(FaultTransportTest, ConsecutiveTimeoutsAbortTheConnection) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  conn.SetRequestDeadline(1'000'000, /*real_grace_ms=*/10);
  conn.SetAbortOnConsecutiveTimeouts(2);
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ETIMEDOUT);
  EXPECT_FALSE(conn.aborted());
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ETIMEDOUT);
  EXPECT_TRUE(conn.aborted()) << "second consecutive miss must trip the degradation policy";
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
}

TEST(FaultTransportTest, InterruptUnblocksQueuedRequestBeforeServerSeesIt) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  std::thread interrupter([&] {
    // Wait for the request to be queued, then interrupt it.
    while (conn.channel_queue_depth(0) == 0) {
      std::this_thread::yield();
    }
    EXPECT_EQ(conn.InterruptPid(77), 1u);
  });
  FuseRequest req;
  req.pid = 77;
  EXPECT_EQ(conn.SendAndWait(std::move(req)).error(), EINTR);
  interrupter.join();
  EXPECT_EQ(conn.stats().interrupts, 1u);
  // The queued request was removed: a server reader sees nothing.
  EXPECT_EQ(conn.channel_queue_depth(0), 0u);
  conn.Abort();
}

TEST(FaultTransportTest, InterruptInFlightNotifiesServerAndDropsLateReply) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  std::atomic<uint64_t> unique{0};
  std::thread server([&] {
    auto req = conn.ReadRequest();
    if (!req.has_value()) {
      return;
    }
    unique.store(req->unique);
    // The interrupt arrives as a kInterrupt notification (unique 0)
    // naming the in-flight request.
    auto notify = conn.ReadRequest();
    if (!notify.has_value()) {
      return;
    }
    EXPECT_EQ(notify->opcode, FuseOpcode::kInterrupt);
    EXPECT_EQ(notify->unique, 0u);
    EXPECT_EQ(notify->interrupt_unique, unique.load());
    // Replying anyway is the wedged-server race: the waiter is long gone.
    conn.WriteReply(unique.load(), FuseReply{});
  });
  std::thread interrupter([&] {
    while (unique.load() == 0) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(conn.Interrupt(unique.load()));
  });
  auto reply = conn.SendAndWait(FuseRequest{});
  server.join();
  interrupter.join();
  EXPECT_EQ(reply.error(), EINTR);
  EXPECT_EQ(conn.stats().interrupts, 1u);
  EXPECT_EQ(conn.stats().late_replies, 1u);
  conn.Abort();
}

TEST(FaultTransportTest, AdmissionGateParksCallersAtMaxBackground) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  conn.SetMaxBackground(1);
  std::thread first([&] {
    EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
  });
  while (conn.in_flight() == 0) {
    std::this_thread::yield();
  }
  std::thread second([&] {
    EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
  });
  // The second caller must park at the gate, not join the flight.
  while (conn.stats().admission_waits == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(conn.in_flight(), 1u);
  conn.Abort();  // wakes the flyer and the parked caller alike
  first.join();
  second.join();
  EXPECT_EQ(conn.in_flight(), 0u);
}

// --- mount-level failure semantics (FuseFs through a real CntrFS server) ---

class FaultFsTest : public ::testing::Test {
 protected:
  void Mount(fuse::FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    fuse::RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    fuse_server_ = std::make_unique<fuse::FuseServer>(dev->second, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = fuse::MountFuse(kernel_.get(), *kernel_->init(), "/m", dev->second, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDown() override {
    if (kernel_ != nullptr) {
      kernel_->faults().DisarmAll();
    }
    if (fuse_fs_ != nullptr) {
      (void)fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  FaultRegistry& faults() { return kernel_->faults(); }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<fuse::FuseServer> fuse_server_;
  std::shared_ptr<fuse::FuseFs> fuse_fs_;
};

TEST_F(FaultFsTest, DispatchFaultSurfacesAsTheInjectedErrno) {
  Mount(fuse::FuseMountOptions::Optimized());
  FaultSpec spec;
  spec.error = ENOSPC;
  spec.one_shot = true;
  faults().Arm("cntrfs.dispatch", spec);
  auto fd = kernel_->Open(*proc_, "/m/tmp/boom", kernel::kOWrOnly | kernel::kOCreat, 0644);
  EXPECT_EQ(fd.error(), ENOSPC);
  // One-shot: the mount is healthy again afterwards.
  auto fd2 = kernel_->Open(*proc_, "/m/tmp/boom", kernel::kOWrOnly | kernel::kOCreat, 0644);
  EXPECT_TRUE(fd2.ok()) << fd2.status().ToString();
}

TEST_F(FaultFsTest, WorkerDeathDegradesTheMountToEio) {
  Mount(fuse::FuseMountOptions::Optimized());
  FaultSpec spec;
  spec.action = FaultAction::kKill;
  spec.one_shot = true;
  faults().Arm("fuse.server.worker", spec);
  // The killed worker aborts the connection on its way out: the op that hit
  // it and every one after answer EIO at the filesystem boundary — a dead
  // mount looks like a dead disk, it does not wedge or speak ENOTCONN.
  auto fd = kernel_->Open(*proc_, "/m/tmp/crash", kernel::kOWrOnly | kernel::kOCreat, 0644);
  EXPECT_EQ(fd.error(), EIO);
  EXPECT_TRUE(fuse_fs_->conn().aborted());
  EXPECT_EQ(kernel_->Stat(*proc_, "/m/tmp/crash").error(), EIO);
  EXPECT_EQ(fuse_fs_->conn().lane_bytes_in_flight(), 0u);
}

TEST_F(FaultFsTest, DeadlineTimeoutsAutoAbortAStalledMount) {
  fuse::FuseMountOptions opts = fuse::FuseMountOptions::Optimized();
  opts.request_deadline_ns = 200'000;
  opts.deadline_grace_ms = 20;
  opts.abort_after_timeouts = 1;
  Mount(opts);
  // kDrop: the server handles the request but its reply evaporates — the
  // wedged-server shape only the deadline machinery can resolve.
  FaultSpec spec;
  spec.action = FaultAction::kDrop;
  faults().Arm("fuse.server.worker", spec);
  EXPECT_EQ(kernel_->Stat(*proc_, "/m/tmp/wedge").error(), ETIMEDOUT);
  faults().DisarmAll();
  // One miss tripped the auto-abort: the mount is now cleanly dead.
  EXPECT_TRUE(fuse_fs_->conn().aborted());
  EXPECT_EQ(kernel_->Stat(*proc_, "/m/tmp/wedge").error(), EIO);
  EXPECT_GE(fuse_fs_->conn().stats().timeouts, 1u);
}

TEST_F(FaultFsTest, ErrseqReportsLostWritebackExactlyOncePerFd) {
  Mount(fuse::FuseMountOptions::Optimized());
  auto fd1 = kernel_->Open(*proc_, "/m/tmp/lost", kernel::kORdWr | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd1.ok());
  auto fd2 = kernel_->Open(*proc_, "/m/tmp/lost", kernel::kORdWr);
  ASSERT_TRUE(fd2.ok());
  std::string data(8192, 'x');
  ASSERT_TRUE(kernel_->Write(*proc_, fd1.value(), data.data(), data.size()).ok());

  // The flush WRITE fails: the pages are marked clean anyway (Linux AS_EIO
  // — keeping them dirty would wedge writeback forever) and the error goes
  // into the superblock errseq stream.
  FaultSpec spec;
  spec.error = ENOSPC;
  spec.one_shot = true;
  faults().Arm("cntrfs.dispatch", spec);
  EXPECT_EQ(kernel_->Fsync(*proc_, fd1.value()).error(), ENOSPC)
      << "fsync must report the lost write";
  EXPECT_TRUE(kernel_->Fsync(*proc_, fd1.value()).ok())
      << "the same fd must see the error exactly once";
  // The second fd holds an older cursor: it still gets its one report.
  EXPECT_EQ(kernel_->Fsync(*proc_, fd2.value()).error(), ENOSPC);
  EXPECT_TRUE(kernel_->Fsync(*proc_, fd2.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd1.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd2.value()).ok());
}

TEST_F(FaultFsTest, CloseReportsPendingWritebackError) {
  Mount(fuse::FuseMountOptions::Optimized());
  auto fd = kernel_->Open(*proc_, "/m/tmp/lateclose", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(4096, 'c');
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
  FaultSpec spec;
  spec.error = EDQUOT;
  spec.one_shot = true;
  faults().Arm("cntrfs.dispatch", spec);
  // Close flushes; the failed flush must not vanish silently.
  EXPECT_EQ(kernel_->Close(*proc_, fd.value()).error(), EDQUOT);
}

TEST_F(FaultFsTest, DetachSurfacesFinalFlushErrors) {
  Mount(fuse::FuseMountOptions::Optimized());
  auto fd = kernel_->Open(*proc_, "/m/tmp/dirtyexit", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(8192, 'd');
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
  // The fd stays open: Shutdown's final drain is what hits the fault.
  FaultSpec spec;
  spec.error = ENOSPC;
  spec.one_shot = true;
  faults().Arm("cntrfs.dispatch", spec);
  Status down = fuse_fs_->Shutdown();
  EXPECT_EQ(down.error(), ENOSPC)
      << "detach must not return Ok when the final flush lost dirty data";
}

TEST_F(FaultFsTest, FlusherFaultLandsInTheErrseqStream) {
  fuse::FuseMountOptions opts = fuse::FuseMountOptions::Optimized();
  opts.flusher_threads = 1;
  opts.per_inode_dirty_bytes = 4096;  // hand writes to the flusher fast
  Mount(opts);
  FaultSpec spec;
  spec.error = ENOSPC;
  spec.one_shot = true;
  faults().Arm("fuse.flusher", spec);
  auto fd = kernel_->Open(*proc_, "/m/tmp/bg", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(32 * 1024, 'b');
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
  // The background flusher hits the fault and records it; poll the stream.
  for (int i = 0; i < 2000 && fuse_fs_->wb_err_seq() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(fuse_fs_->wb_err_seq(), 0u) << "flusher never recorded the injected error";
  faults().DisarmAll();
  EXPECT_EQ(kernel_->Fsync(*proc_, fd.value()).error(), ENOSPC)
      << "the error a background flusher hit must reach the next fsync";
  EXPECT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
}

TEST_F(FaultFsTest, KilledFlusherLeavesDataReachableViaFsync) {
  fuse::FuseMountOptions opts = fuse::FuseMountOptions::Optimized();
  opts.flusher_threads = 1;
  opts.per_inode_dirty_bytes = 4096;
  Mount(opts);
  FaultSpec spec;
  spec.action = FaultAction::kKill;
  spec.one_shot = true;
  faults().Arm("fuse.flusher", spec);
  auto fd = kernel_->Open(*proc_, "/m/tmp/orphan", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(32 * 1024, 'o');
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
  for (int i = 0; i < 2000 && fuse_fs_->flusher_thread_count() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fuse_fs_->flusher_thread_count(), 0u) << "the killed flusher must be accounted dead";
  // Foreground durability still works without the background pool.
  EXPECT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  EXPECT_GT(cntrfs_->stats().writes, 0u);
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
}

TEST_F(FaultFsTest, ExitingProcessInterruptsItsInFlightRequests) {
  Mount(fuse::FuseMountOptions::Optimized());
  // A second connection with no server: requests queue forever unless the
  // kernel's exit hook interrupts them.
  auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
  ASSERT_TRUE(dev.ok());
  std::shared_ptr<FuseConn> orphan = dev->second;
  kernel::ProcessPtr doomed = kernel_->Fork(*kernel_->init(), "doomed");
  std::thread waiter([&] {
    FuseRequest req;
    req.pid = doomed->global_pid();
    EXPECT_EQ(orphan->SendAndWait(std::move(req)).error(), EINTR);
  });
  while (orphan->channel_queue_depth(0) == 0) {
    std::this_thread::yield();
  }
  kernel_->Exit(*doomed);
  waiter.join();
  EXPECT_EQ(orphan->stats().interrupts, 1u);
}

// --- socket proxy: transient accept exhaustion backs off and retries ---

TEST(FaultProxyTest, TransientAcceptExhaustionBacksOffAndRetries) {
  auto kernel = kernel::Kernel::Create();
  kernel::ProcessPtr container = kernel->Fork(*kernel->init(), "app-container");
  kernel::ProcessPtr client = kernel->Fork(*kernel->init(), "app-client");
  kernel::ProcessPtr host = kernel->Fork(*kernel->init(), "x11-host");
  constexpr const char* kAppPath = "/tmp/fault-app.sock";
  constexpr const char* kHostPath = "/tmp/fault-host.sock";
  auto listen = kernel->SocketListen(*host, kHostPath);
  ASSERT_TRUE(listen.ok());

  core::SocketProxy proxy(kernel.get(), container, host);
  ASSERT_TRUE(proxy.Forward(kAppPath, kHostPath).ok());

  // First accept attempt hits EMFILE (fd exhaustion, transient by nature).
  FaultSpec spec;
  spec.error = EMFILE;
  spec.one_shot = true;
  kernel->faults().Arm("kernel.socket.accept", spec);

  auto conn = kernel->SocketConnect(*client, kAppPath);
  ASSERT_TRUE(conn.ok());
  proxy.RunOnce(0);
  EXPECT_EQ(proxy.stats().accept_retries, 1u);
  EXPECT_EQ(proxy.stats().connections, 0u);
  EXPECT_EQ(proxy.stats().accept_failures, 0u)
      << "a deferred accept is not an unwound connection";

  // While the backoff deadline holds, the listener sits out.
  proxy.RunOnce(0);
  EXPECT_EQ(proxy.stats().connections, 0u);

  // Past the (virtual) backoff the parked connection is accepted normally.
  kernel->clock().Advance(2'000'000);
  for (int i = 0; i < 50 && proxy.stats().connections == 0; ++i) {
    proxy.RunOnce(0);
  }
  EXPECT_EQ(proxy.stats().connections, 1u);
  EXPECT_EQ(proxy.stats().accept_failures, 0u);
  auto server = kernel->SocketAccept(*host, listen.value(), /*nonblock=*/true);
  EXPECT_TRUE(server.ok()) << "the parked connection must reach the host side";
}

}  // namespace
}  // namespace cntr::fault
