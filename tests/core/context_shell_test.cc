// Unit tests for CNTR's step-1 context gathering (procfs text parsers and
// the full GatherContext flow) and the toolbox shell.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/core/context.h"
#include "src/core/pty.h"
#include "src/core/shell.h"

namespace cntr::core {
namespace {

TEST(ProcParserTest, ParsesStatus) {
  std::string text =
      "Name:\tmysqld\nPid:\t1\nPPid:\t0\nUid:\t999\t999\t999\t999\n"
      "Gid:\t999\t999\t999\t999\nGroups:\t999\n"
      "CapInh:\t0000000000000000\nCapPrm:\t00000000a80425fb\n"
      "CapEff:\t00000000a80425fb\nCapBnd:\t00000000a80425fb\n";
  auto parsed = ParseProcStatus(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "mysqld");
  EXPECT_EQ(parsed->uid, 999u);
  EXPECT_EQ(parsed->gid, 999u);
  EXPECT_EQ(parsed->cap_effective, 0xa80425fbull);
}

TEST(ProcParserTest, MalformedStatusFails) {
  EXPECT_FALSE(ParseProcStatus("garbage\n").ok());
}

TEST(ProcParserTest, ParsesIdMap) {
  auto map = ParseIdMap("         0     100000      65536\n     70000     200000       1000\n");
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map[0].inside, 0u);
  EXPECT_EQ(map[0].outside, 100000u);
  EXPECT_EQ(map[0].count, 65536u);
  EXPECT_EQ(map[1].inside, 70000u);
}

TEST(ProcParserTest, IdentityMapParsesAsEmpty) {
  auto map = ParseIdMap("         0          0 4294967295\n");
  EXPECT_TRUE(map.empty());
}

TEST(ProcParserTest, ParsesEnviron) {
  std::string text = std::string("PATH=/usr/bin") + '\0' + "HOME=/root" + '\0' + "EMPTY=" + '\0';
  auto env = ParseEnviron(text);
  EXPECT_EQ(env.at("PATH"), "/usr/bin");
  EXPECT_EQ(env.at("HOME"), "/root");
  EXPECT_EQ(env.at("EMPTY"), "");
}

class ContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<container::ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<container::Registry>(&kernel_->clock());
    docker_ = std::make_unique<container::DockerEngine>(runtime_.get(), registry_.get());
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::unique_ptr<container::Registry> registry_;
  std::unique_ptr<container::DockerEngine> docker_;
};

TEST_F(ContextTest, GatherContextReadsEverythingFromProc) {
  container::Image image("acme/ctx", "latest");
  container::Layer layer;
  layer.id = "app";
  layer.files.push_back({"/usr/bin/ctx", 1024, 0755, container::FileClass::kAppBinary, ""});
  image.AddLayer(std::move(layer));
  image.env()["SERVICE_URL"] = "http://db:5432";
  image.entrypoint() = "/usr/bin/ctx";
  container::ContainerSpec spec;
  spec.uid_map = {{0, 100000, 65536}};
  auto c = docker_->Run("ctx", image, spec);
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  auto cntr_proc = kernel_->Fork(*kernel_->init(), "cntr");
  auto ctx = GatherContext(kernel_.get(), *cntr_proc, c.value()->init_proc()->global_pid());
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  // Namespaces match the container's actual namespace objects.
  EXPECT_EQ(ctx->mnt_ns.get(), c.value()->init_proc()->mnt_ns.get());
  EXPECT_EQ(ctx->pid_ns.get(), c.value()->init_proc()->pid_ns.get());
  EXPECT_EQ(ctx->net_ns.get(), c.value()->init_proc()->net_ns.get());
  // Capabilities round-trip through the hex rendering.
  EXPECT_EQ(ctx->cap_effective.raw(), c.value()->init_proc()->creds.effective.raw());
  EXPECT_FALSE(ctx->cap_effective.Has(kernel::Capability::kSysAdmin));
  // Environment parsed from NUL-separated environ.
  EXPECT_EQ(ctx->env.at("SERVICE_URL"), "http://db:5432");
  // cgroup resolved to the live node.
  EXPECT_EQ(ctx->cgroup.get(), c.value()->cgroup().get());
  EXPECT_NE(ctx->cgroup_path.find("docker"), std::string::npos);
  // uid map.
  ASSERT_EQ(ctx->uid_map.size(), 1u);
  EXPECT_EQ(ctx->uid_map[0].outside, 100000u);
  // LSM profile name.
  EXPECT_EQ(ctx->lsm_profile, "docker-default");
}

TEST_F(ContextTest, GatherContextFailsForDeadPid) {
  auto cntr_proc = kernel_->Fork(*kernel_->init(), "cntr");
  EXPECT_FALSE(GatherContext(kernel_.get(), *cntr_proc, 9999).ok());
}

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    proc_ = kernel_->Fork(*kernel_->init(), "sh");
    shell_ = std::make_unique<ToolboxShell>(kernel_.get(), proc_);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<ToolboxShell> shell_;
};

TEST_F(ShellTest, EchoAndRedirection) {
  EXPECT_EQ(shell_->Execute("echo hello world"), "hello world\n");
  EXPECT_EQ(shell_->Execute("echo content > /tmp/out"), "");
  EXPECT_EQ(shell_->Execute("cat /tmp/out"), "content\n");
}

TEST_F(ShellTest, FileManipulationBuiltins) {
  shell_->Execute("mkdir /tmp/d");
  shell_->Execute("write /tmp/d/f data123");
  EXPECT_EQ(shell_->Execute("cat /tmp/d/f"), "data123");
  shell_->Execute("cp /tmp/d/f /tmp/d/g");
  EXPECT_EQ(shell_->Execute("cat /tmp/d/g"), "data123");
  shell_->Execute("mv /tmp/d/g /tmp/d/h");
  EXPECT_NE(shell_->Execute("ls /tmp/d").find("h"), std::string::npos);
  shell_->Execute("rm /tmp/d/f /tmp/d/h");
  EXPECT_EQ(shell_->Execute("ls /tmp/d"), "");
}

TEST_F(ShellTest, LsLongFormatShowsModeAndSize) {
  shell_->Execute("write /tmp/file abc");
  std::string out = shell_->Execute("ls -l /tmp");
  EXPECT_NE(out.find("file"), std::string::npos);
  EXPECT_NE(out.find("-644"), std::string::npos);
}

TEST_F(ShellTest, WhichSearchesPath) {
  proc_->env["PATH"] = "/usr/local/bin:/usr/bin";
  shell_->Execute("mkdir /usr/local");
  shell_->Execute("mkdir /usr/local/bin");
  shell_->Execute("write /usr/local/bin/tool bin");
  ASSERT_TRUE(kernel_->Chmod(*proc_, "/usr/local/bin/tool", 0755).ok());
  EXPECT_EQ(shell_->Execute("which tool"), "/usr/local/bin/tool\n");
  EXPECT_EQ(shell_->Execute("which missing"), "missing not found\n");
}

TEST_F(ShellTest, UnknownCommandReports) {
  EXPECT_EQ(shell_->Execute("frobnicate"), "frobnicate: command not found\n");
}

TEST_F(ShellTest, PsReadsProc) {
  std::string out = shell_->Execute("ps");
  EXPECT_NE(out.find("init"), std::string::npos);
}

TEST_F(ShellTest, InteractiveLoopOverPty) {
  Pty pty(kernel_.get());
  std::thread loop([&] { shell_->RunInteractive(pty.slave(), pty.slave()); });
  ASSERT_TRUE(pty.WriteLineToShell("echo ping").ok());
  std::string out;
  for (int i = 0; i < 200 && out.find("ping") == std::string::npos; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    out += pty.DrainShellOutput();
  }
  EXPECT_NE(out.find("ping"), std::string::npos);
  ASSERT_TRUE(pty.WriteLineToShell("exit").ok());
  loop.join();
}

}  // namespace
}  // namespace cntr::core
