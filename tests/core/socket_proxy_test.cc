// SocketProxy behaviour (paper §3.2.4): the segment-spliced data path,
// spliced-vs-copied stats, half-close propagation with residue draining,
// multi-flow fairness under destination backpressure (the EPOLLOUT re-arm
// that replaced the yield spin), partial-accept unwinding, Stop-with-live-
// flows fd accounting, and epoll-failure surfacing.
#include "src/core/socket_proxy.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"

namespace cntr::core {
namespace {

using kernel::Fd;

class SocketProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    container_ = kernel_->Fork(*kernel_->init(), "app-container");
    client_ = kernel_->Fork(*kernel_->init(), "app-client");
    host_ = kernel_->Fork(*kernel_->init(), "x11-host");
    auto listen = kernel_->SocketListen(*host_, kHostPath);
    ASSERT_TRUE(listen.ok()) << listen.status().ToString();
    host_listen_ = listen.value();
  }

  static constexpr const char* kAppPath = "/tmp/proxy-app.sock";
  static constexpr const char* kHostPath = "/tmp/proxy-host.sock";

  std::unique_ptr<SocketProxy> MakeProxy() {
    auto proxy = std::make_unique<SocketProxy>(kernel_.get(), container_, host_);
    auto fwd = proxy->Forward(kAppPath, kHostPath);
    EXPECT_TRUE(fwd.ok()) << fwd.ToString();
    return proxy;
  }

  // Connects a client and, driving the proxy with RunOnce, accepts the
  // forwarded connection on the host listener. Returns (client, server).
  std::pair<Fd, Fd> ConnectThrough(SocketProxy& proxy) {
    auto client = kernel_->SocketConnect(*client_, kAppPath);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    Fd server = -1;
    for (int i = 0; i < 50 && server < 0; ++i) {
      proxy.RunOnce(0);
      auto conn = kernel_->SocketAccept(*host_, host_listen_, /*nonblock=*/true);
      if (conn.ok()) {
        server = conn.value();
      }
    }
    EXPECT_GE(server, 0) << "proxy never forwarded the connection";
    return {client.ok() ? client.value() : -1, server};
  }

  // Reads until `want` bytes arrived (RunOnce-driven), or gives up.
  std::string PumpedRead(SocketProxy& proxy, kernel::Process& proc, Fd fd, size_t want) {
    std::string got;
    char buf[65536];
    for (int i = 0; i < 500 && got.size() < want; ++i) {
      proxy.RunOnce(0);
      auto n = kernel_->Read(proc, fd, buf, std::min(sizeof(buf), want - got.size()));
      if (n.ok()) {
        if (n.value() == 0) {
          break;  // EOF
        }
        got.append(buf, n.value());
      }
    }
    return got;
  }

  // Polls for EOF on `fd` while driving the proxy.
  bool PumpedEof(SocketProxy& proxy, kernel::Process& proc, Fd fd) {
    char buf[256];
    for (int i = 0; i < 500; ++i) {
      proxy.RunOnce(0);
      auto n = kernel_->Read(proc, fd, buf, sizeof(buf));
      if (n.ok() && n.value() == 0) {
        return true;
      }
    }
    return false;
  }

  size_t ContainerFdCount() { return container_->fds.AllFds().size(); }

  // Opens /dev/null in the container until only `leave_free` slots remain
  // in its fd table (max 1024). Returns the filler fds.
  std::vector<Fd> FillContainerFds(size_t leave_free) {
    std::vector<Fd> fillers;
    while (true) {
      auto probe = kernel_->Open(*container_, "/dev/null", kernel::kORdOnly);
      if (!probe.ok()) {
        break;
      }
      fillers.push_back(probe.value());
    }
    // Everything is full now; free exactly `leave_free`.
    for (size_t i = 0; i < leave_free && !fillers.empty(); ++i) {
      (void)kernel_->Close(*container_, fillers.back());
      fillers.pop_back();
    }
    return fillers;
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr container_;
  kernel::ProcessPtr client_;
  kernel::ProcessPtr host_;
  Fd host_listen_ = -1;
};

// --- data path + stats ---

TEST_F(SocketProxyTest, RoundTripIsFullySplicedWithLiveEventLoop) {
  auto proxy = MakeProxy();
  proxy->Start();  // real event-loop thread (also the TSan surface)

  auto client = kernel_->SocketConnect(*client_, kAppPath);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Fd server = -1;
  for (int i = 0; i < 500 && server < 0; ++i) {
    auto conn = kernel_->SocketAccept(*host_, host_listen_, /*nonblock=*/true);
    if (conn.ok()) {
      server = conn.value();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_GE(server, 0);

  ASSERT_TRUE(kernel_->Write(*client_, client.value(), "hello x11", 9).ok());
  std::string got;
  char buf[64];
  for (int i = 0; i < 500 && got.size() < 9; ++i) {
    auto n = kernel_->Read(*host_, server, buf, sizeof(buf));
    if (n.ok() && n.value() > 0) {
      got.append(buf, n.value());
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(got, "hello x11");

  ASSERT_TRUE(kernel_->Write(*host_, server, "ack", 3).ok());
  got.clear();
  for (int i = 0; i < 500 && got.size() < 3; ++i) {
    auto n = kernel_->Read(*client_, client.value(), buf, sizeof(buf));
    if (n.ok() && n.value() > 0) {
      got.append(buf, n.value());
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(got, "ack");

  proxy->Stop();
  auto stats = proxy->stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.bytes_forwarded, 12u);
  EXPECT_EQ(stats.spliced_bytes, 12u) << "proxy data path must ride segments";
  EXPECT_EQ(stats.copied_bytes, 0u) << "no byte-copy fallback on the splice path";
}

TEST_F(SocketProxyTest, CopyModeRelayCountsCopiedBytes) {
  auto proxy = MakeProxy();
  proxy->SetSegmentSplice(false);
  auto [client, server] = ConnectThrough(*proxy);

  ASSERT_TRUE(kernel_->Write(*client_, client, "plain bytes", 11).ok());
  EXPECT_EQ(PumpedRead(*proxy, *host_, server, 11), "plain bytes");

  auto stats = proxy->stats();
  EXPECT_EQ(stats.copied_bytes, 11u);
  EXPECT_EQ(stats.spliced_bytes, 0u);
  EXPECT_EQ(stats.bytes_forwarded, 11u);
}

// --- half-close semantics ---

TEST_F(SocketProxyTest, ShutdownWrPropagatesWithoutKillingResponseDirection) {
  auto proxy = MakeProxy();
  auto [client, server] = ConnectThrough(*proxy);

  // Request, then half-close: shutdown(SHUT_WR) + drain-response, the
  // pattern CloseFlowPair used to break by tearing down both directions.
  ASSERT_TRUE(kernel_->Write(*client_, client, "GET /", 5).ok());
  ASSERT_TRUE(kernel_->SocketShutdown(*client_, client, kernel::kShutWr).ok());

  EXPECT_EQ(PumpedRead(*proxy, *host_, server, 5), "GET /");
  EXPECT_TRUE(PumpedEof(*proxy, *host_, server)) << "EOF must reach the server";

  // The response direction is still alive after the client's half-close.
  ASSERT_TRUE(kernel_->Write(*host_, server, "200 OK", 6).ok());
  EXPECT_EQ(PumpedRead(*proxy, *client_, client, 6), "200 OK");

  // Server finishes; client sees EOF and the proxy retires the pair.
  ASSERT_TRUE(kernel_->Close(*host_, server).ok());
  EXPECT_TRUE(PumpedEof(*proxy, *client_, client));
  EXPECT_EQ(proxy->stats().half_closes, 2u);
  EXPECT_EQ(proxy->stats().bytes_forwarded, 11u);
}

TEST_F(SocketProxyTest, ParkedBytesDrainBeforeEofPropagates) {
  auto proxy = MakeProxy();
  auto [client, server] = ConnectThrough(*proxy);

  // Fill well past one pump chunk, then close the client entirely before
  // the server reads a byte: everything parked in the proxy's pipe and
  // rings must still arrive, EOF only after.
  const size_t kPayload = 150000;
  std::string sent(kPayload, '\0');
  for (size_t i = 0; i < kPayload; ++i) {
    sent[i] = static_cast<char>('a' + i % 23);
  }
  size_t off = 0;
  // Interleave writes with proxy turns: the client ring only holds 256KB.
  while (off < kPayload) {
    auto n = kernel_->Write(*client_, client, sent.data() + off, kPayload - off);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    off += n.value();
    proxy->RunOnce(0);
  }
  ASSERT_TRUE(kernel_->Close(*client_, client).ok());

  std::string got = PumpedRead(*proxy, *host_, server, kPayload);
  EXPECT_EQ(got.size(), kPayload);
  EXPECT_EQ(got, sent) << "parked residue must be delivered in order";
  EXPECT_TRUE(PumpedEof(*proxy, *host_, server));
}

// --- fairness under backpressure ---

TEST_F(SocketProxyTest, BackpressuredFlowDoesNotHeadOfLineBlockOthers) {
  auto proxy = MakeProxy();
  auto [c1, s1] = ConnectThrough(*proxy);
  auto [c2, s2] = ConnectThrough(*proxy);

  // Make client 1 nonblocking and flood until the whole path (its socket
  // ring, the flow pipe, the destination ring) is saturated; the server
  // never reads s1, so flow 1 is permanently backpressured.
  {
    auto file = kernel_->GetFile(*client_, c1);
    ASSERT_TRUE(file.ok());
    file.value()->set_flags(file.value()->flags() | kernel::kONonblock);
  }
  // Non-page-multiple writes: the flow pipe fills with odd-size segments,
  // pinning the one-page headroom rule that keeps the loop progress-bound.
  std::vector<char> chunk(60000, 'x');
  size_t flooded = 0;
  int idle_rounds = 0;
  while (idle_rounds < 3) {
    auto n = kernel_->Write(*client_, c1, chunk.data(), chunk.size());
    if (n.ok() && n.value() > 0) {
      flooded += n.value();
      idle_rounds = 0;
    } else {
      ++idle_rounds;
    }
    proxy->RunOnce(0);
  }
  ASSERT_GT(flooded, 500000u) << "flood should fill ring + pipe + dst ring";

  // Flow 2 must still deliver promptly. Before the event-driven rewrite the
  // pump's yield-spin on flow 1 starved every other flow forever.
  const size_t kMsg = 65536;
  std::string msg(kMsg, 'y');
  size_t off = 0;
  while (off < kMsg) {
    auto n = kernel_->Write(*client_, c2, msg.data() + off, kMsg - off);
    ASSERT_TRUE(n.ok());
    off += n.value();
    proxy->RunOnce(0);
  }
  EXPECT_EQ(PumpedRead(*proxy, *host_, s2, kMsg), msg);

  // Once the server drains s1, the EPOLLOUT re-arm resumes flow 1 and every
  // flooded byte arrives.
  std::string drained = PumpedRead(*proxy, *host_, s1, flooded);
  EXPECT_EQ(drained.size(), flooded) << "no bytes lost across backpressure";
  EXPECT_EQ(proxy->stats().bytes_forwarded, flooded + kMsg);
}

TEST_F(SocketProxyTest, DestinationShutRdUnderBackpressureAbortsFlow) {
  auto proxy = MakeProxy();
  auto [client, server] = ConnectThrough(*proxy);
  {
    auto file = kernel_->GetFile(*client_, client);
    ASSERT_TRUE(file.ok());
    file.value()->set_flags(file.value()->flags() | kernel::kONonblock);
  }
  // Saturate the path so the flow parks on EPOLLOUT...
  std::vector<char> chunk(65536, 'b');
  int idle_rounds = 0;
  while (idle_rounds < 3) {
    auto n = kernel_->Write(*client_, client, chunk.data(), chunk.size());
    idle_rounds = n.ok() && n.value() > 0 ? 0 : idle_rounds + 1;
    proxy->RunOnce(0);
  }
  // ...then the destination stops reading for good. The proxy must wake,
  // observe the broken delivery path and propagate EPIPE upstream — not
  // stay parked forever on a ring that will never drain.
  ASSERT_TRUE(kernel_->SocketShutdown(*host_, server, kernel::kShutRd).ok());
  bool epipe = false;
  for (int i = 0; i < 200 && !epipe; ++i) {
    proxy->RunOnce(0);
    auto n = kernel_->Write(*client_, client, chunk.data(), chunk.size());
    epipe = !n.ok() && n.error() == EPIPE;
  }
  EXPECT_TRUE(epipe) << "origin writer must see EPIPE after the destination broke";
}

// --- accept unwinding ---

TEST_F(SocketProxyTest, PartialAcceptFailureUnwindsWholeConnection) {
  auto proxy = MakeProxy();
  size_t baseline = ContainerFdCount();
  // Leave room for accept + upstream connect + the first pipe pair; the
  // second pipe allocation hits EMFILE.
  std::vector<Fd> fillers = FillContainerFds(/*leave_free=*/4);

  auto client = kernel_->SocketConnect(*client_, kAppPath);
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    proxy->RunOnce(0);
  }
  EXPECT_EQ(proxy->stats().connections, 0u);
  EXPECT_EQ(proxy->stats().accept_failures, 1u);
  EXPECT_EQ(ContainerFdCount(), baseline + fillers.size())
      << "conn/upstream/pipes must all unwind on partial failure";
  // The client observes a closed connection, not a half-wired one.
  EXPECT_TRUE(PumpedEof(*proxy, *client_, client.value()));

  // With the pressure gone the same rule accepts cleanly again.
  for (Fd fd : fillers) {
    (void)kernel_->Close(*container_, fd);
  }
  auto [c2, s2] = ConnectThrough(*proxy);
  ASSERT_TRUE(kernel_->Write(*client_, c2, "retry", 5).ok());
  EXPECT_EQ(PumpedRead(*proxy, *host_, s2, 5), "retry");
  EXPECT_EQ(proxy->stats().connections, 1u);
}

// --- lifecycle / fd accounting ---

TEST_F(SocketProxyTest, StopWithLiveFlowsReleasesEveryFd) {
  size_t baseline = ContainerFdCount();
  {
    auto proxy = MakeProxy();
    proxy->Start();
    auto client_a = kernel_->SocketConnect(*client_, kAppPath);
    auto client_b = kernel_->SocketConnect(*client_, kAppPath);
    ASSERT_TRUE(client_a.ok());
    ASSERT_TRUE(client_b.ok());
    // Let the proxy establish both and park some undelivered bytes.
    std::string payload(8192, 'z');
    (void)kernel_->Write(*client_, client_a.value(), payload.data(), payload.size());
    for (int i = 0; i < 200 && proxy->stats().connections < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(proxy->stats().connections, 2u);
    proxy->Stop();
    EXPECT_EQ(ContainerFdCount(), baseline)
        << "listener, epoll fd, sockets and flow pipes must all be released";
  }
  EXPECT_EQ(ContainerFdCount(), baseline);
}

TEST_F(SocketProxyTest, EpollCreateFailureSurfacesOnForward) {
  std::vector<Fd> fillers = FillContainerFds(/*leave_free=*/0);
  SocketProxy proxy(kernel_.get(), container_, host_);
  auto fwd = proxy.Forward(kAppPath, kHostPath);
  EXPECT_FALSE(fwd.ok()) << "a proxy without an epoll fd must refuse rules";
  proxy.Start();  // must be a no-op, not a thread proxying into EBADF
  proxy.RunOnce(0);
  proxy.Stop();
  for (Fd fd : fillers) {
    (void)kernel_->Close(*container_, fd);
  }
}

TEST_F(SocketProxyTest, ForwardAfterStopIsRejected) {
  auto proxy = MakeProxy();
  proxy->Stop();
  EXPECT_FALSE(proxy->Forward(kAppPath, kHostPath).ok());
}

}  // namespace
}  // namespace cntr::core
