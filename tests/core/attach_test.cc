// End-to-end attach tests: the full CNTR workflow against running
// containers on the simulated kernel — the paper's three use cases
// (container→container, host→container, container→host) plus teardown.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/core/attach.h"
#include "src/kernel/kernel.h"

namespace cntr::core {
namespace {

using container::ContainerEngine;
using container::ContainerRuntime;
using container::ContainerSpec;
using container::DockerEngine;
using container::Image;
using container::ImageFile;
using container::Layer;
using container::MakeFatToolsImage;
using container::Registry;

Image MakeSlimAppImage(const std::string& app) {
  Image image("app/" + app, "slim");
  Layer layer;
  layer.id = "app-" + app;
  layer.files.push_back(ImageFile{"/usr/bin/" + app, 12 << 20, 0755,
                                  container::FileClass::kAppBinary, ""});
  layer.files.push_back(ImageFile{"/etc/" + app + ".conf", 0, 0644,
                                  container::FileClass::kConfig, "port=5432\n"});
  layer.files.push_back(ImageFile{"/etc/passwd", 0, 0644, container::FileClass::kConfig,
                                  app + ":x:100:100::/var/lib/" + app + ":/sbin/nologin\n"});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/" + app;
  image.env()["PATH"] = "/usr/bin:/bin";
  image.env()["APP_MODE"] = "production";
  return image;
}

class AttachTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<Registry>(&kernel_->clock());
    docker_ = std::make_shared<DockerEngine>(runtime_.get(), registry_.get());
    cntr_ = std::make_unique<Cntr>(kernel_.get());
    cntr_->RegisterEngine(docker_);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Registry> registry_;
  std::shared_ptr<DockerEngine> docker_;
  std::unique_ptr<Cntr> cntr_;
};

TEST_F(AttachTest, HostToContainerDebugging) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // The application's filesystem is visible at /var/lib/cntr.
  std::string conf = session.value()->Execute("cat /var/lib/cntr/etc/mysql.conf");
  EXPECT_EQ(conf, "port=5432\n");

  // The tools filesystem at / is the host's: /data (the host ExtFs mount
  // point) exists there, which no container image ships.
  std::string ls = session.value()->Execute("ls /");
  EXPECT_NE(ls.find("data"), std::string::npos) << ls;

  // The app binary is where the image put it.
  std::string stat = session.value()->Execute("stat /var/lib/cntr/usr/bin/mysql");
  EXPECT_NE(stat.find("size=12582912"), std::string::npos) << stat;
}

TEST_F(AttachTest, ContainerToContainerWithFatImage) {
  auto db = docker_->Run("db", MakeSlimAppImage("postgres"));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto tools = docker_->Run("debug-tools", MakeFatToolsImage());
  ASSERT_TRUE(tools.ok()) << tools.status().ToString();

  AttachOptions opts;
  opts.fat_container = "debug-tools";
  auto session = cntr_->Attach("docker", "db", opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // gdb comes from the fat container through CntrFS.
  EXPECT_EQ(session.value()->Execute("which gdb"), "/usr/bin/gdb\n");
  EXPECT_EQ(session.value()->Execute("which vim"), "/usr/bin/vim\n");
  // The slim container has no gdb of its own.
  std::string app_gdb = session.value()->Execute("stat /var/lib/cntr/usr/bin/gdb");
  EXPECT_NE(app_gdb.find("stat:"), std::string::npos);

  // Config files are the application's, bound over the tools image's
  // (paper §3.2.3): /etc/passwd shows the postgres user, not the fat image.
  std::string passwd = session.value()->Execute("cat /etc/passwd");
  EXPECT_NE(passwd.find("postgres"), std::string::npos) << passwd;
}

TEST_F(AttachTest, ToolsSeeApplicationProcesses) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());

  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // /proc inside the nested namespace is the container's: pid 1 is the
  // container init, and gdb can "attach" to it.
  std::string ps = session.value()->Execute("ps");
  EXPECT_NE(ps.find("/usr/bin/mysql"), std::string::npos) << ps;
  std::string gdb = session.value()->Execute("gdb -p 1");
  EXPECT_NE(gdb.find("Attaching to process 1"), std::string::npos) << gdb;
}

TEST_F(AttachTest, EnvironmentAppliedExceptPath) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());

  std::string env = session.value()->Execute("env");
  // Container env travels...
  EXPECT_NE(env.find("APP_MODE=production"), std::string::npos) << env;
  // ...but PATH is the debug side's, not the slim image's restricted one
  // (paper §3.2.3).
  EXPECT_EQ(env.find("PATH=/usr/bin:/bin\n"), std::string::npos) << env;
}

TEST_F(AttachTest, WritesThroughAppMountReachContainer) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());

  // Edit-in-place workflow from the paper's conclusion: write a config via
  // the attach shell, observe it inside the container.
  session.value()->Execute("write /var/lib/cntr/etc/new.conf tuned=1");
  auto& app_init = *db.value()->init_proc();
  auto fd = kernel_->Open(app_init, "/etc/new.conf", kernel::kORdOnly);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  char buf[64] = {};
  auto n = kernel_->Read(app_init, fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "tuned=1");
}

TEST_F(AttachTest, CapabilitiesDroppedToContainerSet) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());

  const auto& creds = session.value()->attach_proc()->creds;
  // Docker's default set excludes CAP_SYS_ADMIN.
  EXPECT_FALSE(creds.HasCap(kernel::Capability::kSysAdmin));
  EXPECT_TRUE(creds.HasCap(kernel::Capability::kChown));
}

TEST_F(AttachTest, HostnameIsTheContainers) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());
  std::string hostname = session.value()->Execute("hostname");
  EXPECT_EQ(hostname, db.value()->id().substr(0, 12) + "\n");
}

TEST_F(AttachTest, AttachByIdPrefix) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  std::string prefix = db.value()->id().substr(0, 12);
  auto session = cntr_->Attach("docker", prefix);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
}

TEST_F(AttachTest, AttachToMissingContainerFails) {
  auto session = cntr_->Attach("docker", "ghost");
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.error(), ENOENT);
}

TEST_F(AttachTest, AttachToStoppedContainerFails) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  kernel::Pid pid = db.value()->init_proc()->global_pid();
  ASSERT_TRUE(runtime_->Stop(db.value()).ok());
  auto session = cntr_->AttachPid(pid, AttachOptions{});
  EXPECT_FALSE(session.ok());
}

TEST_F(AttachTest, DetachStopsServerAndProcesses) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());
  kernel::Pid attach_pid = session.value()->attach_proc()->global_pid();
  ASSERT_TRUE(session.value()->Detach().ok());
  EXPECT_EQ(kernel_->procs().Get(attach_pid), nullptr);
  // Filesystem requests after detach fail cleanly (connection aborted).
  EXPECT_NE(session.value()->Execute("ls /"), "");
}

TEST_F(AttachTest, InteractiveShellOverPty) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());
  auto session = cntr_->Attach("docker", "db");
  ASSERT_TRUE(session.ok());

  session.value()->StartInteractiveShell();
  ASSERT_TRUE(session.value()->pty().WriteLineToShell("cat /var/lib/cntr/etc/mysql.conf").ok());
  // Wait for the prompt marker.
  std::string out;
  for (int i = 0; i < 200 && out.find("$ ") == std::string::npos; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    out += session.value()->pty().DrainShellOutput();
  }
  EXPECT_NE(out.find("port=5432"), std::string::npos) << out;
}

TEST_F(AttachTest, SocketForwardingBetweenContainerAndHost) {
  auto db = docker_->Run("db", MakeSlimAppImage("mysql"));
  ASSERT_TRUE(db.ok());

  // Host-side server socket ("X11").
  auto host_proc = kernel_->Fork(*kernel_->init(), "x11");
  auto listen = kernel_->SocketListen(*host_proc, "/tmp/x11.sock");
  ASSERT_TRUE(listen.ok());

  AttachOptions opts;
  opts.socket_forwards = {{"/tmp/x11.sock", "/tmp/x11.sock"}};
  auto session = cntr_->Attach("docker", "db", opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // A client inside the application container connects to the forwarded
  // socket; the proxy splices to the host server.
  auto& app_init = *db.value()->init_proc();
  kernel::Fd client = -1;
  for (int i = 0; i < 100; ++i) {
    auto attempt = kernel_->SocketConnect(app_init, "/tmp/x11.sock");
    if (attempt.ok()) {
      client = attempt.value();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(client, 0);

  auto server_conn = kernel_->SocketAccept(*host_proc, listen.value());
  ASSERT_TRUE(server_conn.ok()) << server_conn.status().ToString();

  // Round trip through the proxy.
  ASSERT_TRUE(kernel_->Write(app_init, client, "hello x11", 9).ok());
  char buf[32] = {};
  size_t got = 0;
  for (int i = 0; i < 300 && got < 9; ++i) {
    auto n = kernel_->Read(*host_proc, server_conn.value(), buf + got, sizeof(buf) - got);
    if (n.ok()) {
      got += n.value();
    }
    if (got < 9) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(std::string(buf, got), "hello x11");
  EXPECT_GE(session.value()->socket_proxy()->stats().connections, 1u);
}

}  // namespace
}  // namespace cntr::core
