// End-to-end tests for the adaptive I/O windows:
//  * FUSE_MAX_PAGES negotiation (granted, declined, legacy server),
//  * per-open-file sequential readahead ramping vs. random collapse,
//  * adaptive writeback — per-inode dirty limits, soft/hard watermarks,
//    background flusher threads, and flusher/foreground write races,
//  * splice-lane follow-through and autosizing under fallback pressure,
//  * per-channel queue-depth statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

std::string Pattern(size_t size, char salt = 0) {
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>('A' + (i / 7 + i / 4096 + salt) % 23);
  }
  return out;
}

// An "old server": answers everything through CntrFS but predates
// FUSE_MAX_PAGES — it echoes INIT flags without the bit and grants nothing.
class LegacyInitHandler : public FuseHandler {
 public:
  explicit LegacyInitHandler(FuseHandler* inner) : inner_(inner) {}
  FuseReply Handle(const FuseRequest& req) override {
    FuseReply reply = inner_->Handle(req);
    if (req.opcode == FuseOpcode::kInit) {
      reply.init_flags &= ~kFuseMaxPages;
      reply.max_pages = 0;
    }
    return reply;
  }
  void OnDestroy() override { inner_->OnDestroy(); }

 private:
  FuseHandler* inner_;
};

class AdaptiveIoTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts, bool legacy_server = false) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    handler_ = cntrfs_.get();
    if (legacy_server) {
      legacy_ = std::make_unique<LegacyInitHandler>(cntrfs_.get());
      handler_ = legacy_.get();
    }
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    conn_ = dev->second;
    fuse_server_ = std::make_unique<FuseServer>(conn_, handler_, 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", conn_, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  void Remount(FuseMountOptions opts, bool legacy_server = false) {
    TearDown();
    fuse_fs_.reset();
    fuse_server_.reset();
    conn_.reset();
    legacy_.reset();
    cntrfs_.reset();
    proc_.reset();
    server_proc_.reset();
    kernel_.reset();
    Mount(opts, legacy_server);
  }

  void SeedFile(const std::string& path, const std::string& data) {
    auto fd = kernel_->Open(*kernel_->init(), path,
                            kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
    ASSERT_TRUE(fd.ok());
    size_t off = 0;
    while (off < data.size()) {
      auto n = kernel_->Write(*kernel_->init(), fd.value(), data.data() + off,
                              data.size() - off);
      ASSERT_TRUE(n.ok());
      off += n.value();
    }
    ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  }

  std::string ReadThroughMount(kernel::Process& proc, const std::string& path, size_t size,
                               size_t chunk = SIZE_MAX) {
    auto fd = kernel_->Open(proc, path, kernel::kORdOnly);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string out(size, '\0');
    size_t off = 0;
    while (off < size) {
      auto n = kernel_->Read(proc, fd.value(), out.data() + off,
                             std::min(chunk, size - off));
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || n.value() == 0) {
        break;
      }
      off += n.value();
    }
    out.resize(off);
    EXPECT_TRUE(kernel_->Close(proc, fd.value()).ok());
    return out;
  }

  void WriteThroughMount(kernel::Process& proc, const std::string& path,
                         const std::string& data, size_t chunk = SIZE_MAX) {
    auto fd = kernel_->Open(proc, path,
                            kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    size_t off = 0;
    while (off < data.size()) {
      auto n = kernel_->Write(proc, fd.value(), data.data() + off,
                              std::min(chunk, data.size() - off));
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      off += n.value();
    }
    ASSERT_TRUE(kernel_->Close(proc, fd.value()).ok());
  }

  std::string ReadHostSide(const std::string& path, size_t size) {
    auto fd = kernel_->Open(*kernel_->init(), path, kernel::kORdOnly);
    EXPECT_TRUE(fd.ok());
    std::string out(size, '\0');
    size_t off = 0;
    while (off < size) {
      auto n = kernel_->Read(*kernel_->init(), fd.value(), out.data() + off, size - off);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || n.value() == 0) {
        break;
      }
      off += n.value();
    }
    out.resize(off);
    EXPECT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
    return out;
  }

  // Polls a condition for up to 5 real seconds (background flushers run on
  // real threads).
  bool WaitFor(const std::function<bool()>& cond) {
    for (int i = 0; i < 500; ++i) {
      if (cond()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return cond();
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::shared_ptr<FuseConn> conn_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<LegacyInitHandler> legacy_;
  FuseHandler* handler_ = nullptr;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

// --- FUSE_MAX_PAGES negotiation ---

TEST_F(AdaptiveIoTest, DefaultMountNegotiates1MiBWindows) {
  Mount(FuseMountOptions::Optimized());
  EXPECT_EQ(fuse_fs_->negotiated_max_pages(), kFuseMaxMaxPages);
  EXPECT_EQ(fuse_fs_->effective_max_write(), kFuseMaxMaxPages * kernel::kPageSize);
  EXPECT_EQ(fuse_fs_->readahead_ceiling_pages(), kFuseMaxMaxPages);
  // Lane follow-through: the splice lanes cover the negotiated window.
  EXPECT_GE(conn_->lane_capacity(0), kFuseMaxMaxPages * kernel::kPageSize);
}

TEST_F(AdaptiveIoTest, MaxPagesZeroKeepsLegacyWindows) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.max_pages = 0;
  Mount(opts);
  EXPECT_EQ(fuse_fs_->negotiated_max_pages(), 0u);
  EXPECT_EQ(fuse_fs_->effective_max_write(), opts.max_write);
  EXPECT_EQ(fuse_fs_->readahead_ceiling_pages(), opts.readahead_pages);
}

TEST_F(AdaptiveIoTest, OldServerRejectingFlagFallsBackTo32Pages) {
  Mount(FuseMountOptions::Optimized(), /*legacy_server=*/true);
  EXPECT_EQ(fuse_fs_->negotiated_max_pages(), 0u);
  EXPECT_EQ(fuse_fs_->effective_max_write(), 128u * 1024);
  EXPECT_EQ(fuse_fs_->readahead_ceiling_pages(), 32u);
  // And the mount still works end to end.
  const std::string want = Pattern(256 * 1024);
  SeedFile("/data/legacy.dat", want);
  EXPECT_EQ(ReadThroughMount(*proc_, "/m/data/legacy.dat", want.size()), want);
}

TEST_F(AdaptiveIoTest, MaxPagesRequestIsClampedByMountOption) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.max_pages = 64;  // ask for less than the server's 256-page cap
  Mount(opts);
  EXPECT_EQ(fuse_fs_->negotiated_max_pages(), 64u);
  EXPECT_EQ(fuse_fs_->effective_max_write(), 64u * kernel::kPageSize);
}

// --- readahead ramping ---

TEST_F(AdaptiveIoTest, SequentialReadRampsToFarFewerRequests) {
  const size_t kSize = 4u << 20;  // 1024 pages
  const std::string want = Pattern(kSize);

  // Fixed legacy windows: ~1024/32 = 32 READ round trips.
  FuseMountOptions fixed = FuseMountOptions::Optimized();
  fixed.max_pages = 0;
  Mount(fixed);
  SeedFile("/data/seq.dat", want);
  EXPECT_EQ(ReadThroughMount(*proc_, "/m/data/seq.dat", kSize, 1 << 20), want);
  uint64_t fixed_reads = cntrfs_->stats().reads;
  EXPECT_GE(fixed_reads, 30u);

  // Adaptive: 8,16,32,...,256-page windows — an order of magnitude fewer.
  Remount(FuseMountOptions::Optimized());
  SeedFile("/data/seq.dat", want);
  EXPECT_EQ(ReadThroughMount(*proc_, "/m/data/seq.dat", kSize, 1 << 20), want);
  uint64_t adaptive_reads = cntrfs_->stats().reads;
  EXPECT_LT(adaptive_reads, fixed_reads / 2)
      << "sequential ramp should collapse the READ count";
  EXPECT_LE(adaptive_reads, 12u);
}

TEST_F(AdaptiveIoTest, RandomAccessCollapsesTheWindow) {
  // With the 1MiB ceiling negotiated, a fixed-at-ceiling reader would fill
  // 256 pages per random miss (32 misses -> 32MiB of fills on each side).
  // The ramp must collapse to kMinWindowPages instead, so the fills stay
  // within a few hundred KiB total.
  const size_t kSize = 16u << 20;
  const std::string want = Pattern(kSize);
  Mount(FuseMountOptions::Optimized());
  ASSERT_EQ(fuse_fs_->readahead_ceiling_pages(), kFuseMaxMaxPages);
  SeedFile("/data/rand.dat", want);
  kernel_->page_cache().DropAllClean();
  uint64_t resident_before = kernel_->page_cache().ResidentBytes();
  uint64_t reads_before = cntrfs_->stats().reads;

  auto fd = kernel_->Open(*proc_, "/m/data/rand.dat", kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  char buf[4096];
  // Scattered single-page reads, strides far apart, never at page 0.
  constexpr int kReads = 32;
  for (int i = 1; i <= kReads; ++i) {
    uint64_t off = (static_cast<uint64_t>(i) * 499) % (kSize / 4096) * 4096;
    auto n = kernel_->Pread(*proc_, fd.value(), buf, sizeof(buf), off);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(std::string(buf, n.value()), want.substr(off, n.value()));
  }
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());

  // Each miss filled only a collapsed window (kernel and server side), not
  // the 256-page ceiling.
  uint64_t growth = kernel_->page_cache().ResidentBytes() - resident_before;
  EXPECT_LE(growth, uint64_t{kReads} * 4 * kernel::kPageSize)
      << "random misses must not fill ceiling-sized windows";
  // And each random read stayed one READ round trip.
  EXPECT_LE(cntrfs_->stats().reads - reads_before, uint64_t{kReads} + 2);
}

// --- adaptive writeback ---

TEST_F(AdaptiveIoTest, PerInodeLimitTriggersBackgroundFlush) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 1;
  opts.per_inode_dirty_bytes = 64 * 1024;
  opts.dirty_soft_bytes = 1ull << 40;  // only the per-inode limit can trip
  opts.dirty_hard_bytes = 1ull << 40;
  Mount(opts);
  ASSERT_EQ(fuse_fs_->flusher_thread_count(), 1u);

  const std::string want = Pattern(1 << 20);
  auto fd = kernel_->Open(*proc_, "/m/data/bg.dat",
                          kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fd.ok());
  size_t off = 0;
  while (off < want.size()) {
    auto n = kernel_->Write(*proc_, fd.value(), want.data() + off,
                            std::min<size_t>(64 * 1024, want.size() - off));
    ASSERT_TRUE(n.ok());
    off += n.value();
  }
  // The background flusher drains the file without close/fsync.
  EXPECT_TRUE(WaitFor([&] { return fuse_fs_->background_flushes() > 0; }));
  EXPECT_TRUE(WaitFor([&] { return cntrfs_->stats().writes > 0; }));
  EXPECT_EQ(fuse_fs_->foreground_throttles(), 0u) << "writer must not stall";
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  EXPECT_EQ(ReadHostSide("/data/bg.dat", want.size()), want);
}

TEST_F(AdaptiveIoTest, HardWatermarkWithoutFlushersDrainsSynchronously) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 0;  // legacy configuration
  opts.dirty_soft_bytes = 64 * 1024;
  opts.dirty_hard_bytes = 128 * 1024;
  opts.per_inode_dirty_bytes = 1ull << 40;
  Mount(opts);
  ASSERT_EQ(fuse_fs_->flusher_thread_count(), 0u);

  const std::string want = Pattern(1 << 20);
  WriteThroughMount(*proc_, "/m/data/hard.dat", want, 64 * 1024);
  EXPECT_GT(fuse_fs_->foreground_throttles(), 0u);
  EXPECT_LE(fuse_fs_->dirty_bytes(), opts.dirty_hard_bytes);
  EXPECT_EQ(ReadHostSide("/data/hard.dat", want.size()), want);
}

TEST_F(AdaptiveIoTest, HardWatermarkWithFlushersThrottlesBounded) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 2;
  opts.dirty_soft_bytes = 128 * 1024;
  opts.dirty_hard_bytes = 256 * 1024;
  opts.per_inode_dirty_bytes = 64 * 1024;
  Mount(opts);

  const std::string want = Pattern(4 << 20);
  WriteThroughMount(*proc_, "/m/data/throttle.dat", want, 64 * 1024);
  EXPECT_EQ(ReadHostSide("/data/throttle.dat", want.size()), want);
}

TEST_F(AdaptiveIoTest, TruncateReturnsDroppedDirtyBytesToTheWatermarks) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 0;
  opts.dirty_soft_bytes = 1ull << 40;
  opts.dirty_hard_bytes = 1ull << 40;  // nothing flushes during the test
  Mount(opts);

  const std::string want = Pattern(1 << 20);
  auto fd = kernel_->Open(*proc_, "/m/data/trunc.dat",
                          kernel::kORdWr | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), want.data(), want.size()).ok());
  EXPECT_GE(fuse_fs_->dirty_bytes(), want.size());
  // Truncation drops the dirty pages without a flush; the accounting must
  // follow or the watermarks ratchet upward forever.
  ASSERT_TRUE(kernel_->Ftruncate(*proc_, fd.value(), 0).ok());
  EXPECT_EQ(fuse_fs_->dirty_bytes(), 0u);
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
}

TEST_F(AdaptiveIoTest, SoftWatermarkDrainsIdleDirtyInodesToo) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 1;
  opts.per_inode_dirty_bytes = 1ull << 40;  // only the watermark can trip
  opts.dirty_soft_bytes = 256 * 1024;
  opts.dirty_hard_bytes = 1ull << 40;
  Mount(opts);

  // File A goes dirty and idle, below the watermark on its own.
  const std::string a = Pattern(128 * 1024, 1);
  auto fda = kernel_->Open(*proc_, "/m/data/idle.dat",
                           kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fda.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fda.value(), a.data(), a.size()).ok());

  // File B pushes the pool over the soft watermark: the flushers must
  // drain the whole registered dirty set, idle A included.
  const std::string b = Pattern(256 * 1024, 2);
  auto fdb = kernel_->Open(*proc_, "/m/data/busy.dat",
                           kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fdb.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fdb.value(), b.data(), b.size()).ok());

  EXPECT_TRUE(WaitFor([&] { return fuse_fs_->dirty_bytes() < opts.dirty_soft_bytes; }));
  // A's bytes reached the server without fsync/close on A.
  EXPECT_TRUE(WaitFor([&] { return ReadHostSide("/data/idle.dat", a.size()) == a; }));
  ASSERT_TRUE(kernel_->Close(*proc_, fda.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fdb.value()).ok());
}

TEST_F(AdaptiveIoTest, RewriteRacingBackgroundFlushKeepsLatestBytes) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 2;
  opts.per_inode_dirty_bytes = 32 * 1024;  // flushes constantly mid-write
  Mount(opts);

  const size_t kSize = 512 * 1024;
  const std::string v1 = Pattern(kSize, 1);
  const std::string v2 = Pattern(kSize, 2);
  auto fd = kernel_->Open(*proc_, "/m/data/race.dat",
                          kernel::kORdWr | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fd.ok());
  // Write v1, then immediately overwrite with v2 while the background
  // flusher is racing through v1's dirty pages. Generation-checked
  // writeback must never let a v1 flush mark a v2 page clean.
  for (const std::string* v : {&v1, &v2}) {
    size_t off = 0;
    while (off < v->size()) {
      auto n = kernel_->Pwrite(*proc_, fd.value(), v->data() + off,
                               std::min<size_t>(16 * 1024, v->size() - off), off);
      ASSERT_TRUE(n.ok());
      off += n.value();
    }
  }
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  EXPECT_EQ(ReadHostSide("/data/race.dat", v2.size()), v2);
}

TEST_F(AdaptiveIoTest, ConcurrentWritersAndFlushersLandExactBytes) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.flusher_threads = 2;
  opts.per_inode_dirty_bytes = 64 * 1024;
  opts.dirty_soft_bytes = 256 * 1024;
  opts.dirty_hard_bytes = 512 * 1024;
  Mount(opts);

  constexpr int kWriters = 4;
  constexpr size_t kFileSize = 512 * 1024;
  std::vector<kernel::ProcessPtr> procs;
  for (int i = 0; i < kWriters; ++i) {
    procs.push_back(kernel_->Fork(*kernel_->init(), "writer" + std::to_string(i)));
  }
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&, i] {
      const std::string data = Pattern(kFileSize, static_cast<char>(i));
      std::string path = "/m/data/w" + std::to_string(i) + ".dat";
      auto fd = kernel_->Open(*procs[i], path,
                              kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
      if (!fd.ok()) {
        failures.fetch_add(1);
        return;
      }
      size_t off = 0;
      while (off < data.size()) {
        auto n = kernel_->Write(*procs[i], fd.value(), data.data() + off,
                                std::min<size_t>(16 * 1024, data.size() - off));
        if (!n.ok()) {
          failures.fetch_add(1);
          return;
        }
        off += n.value();
      }
      if (!kernel_->Fsync(*procs[i], fd.value()).ok() ||
          !kernel_->Close(*procs[i], fd.value()).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kWriters; ++i) {
    const std::string want = Pattern(kFileSize, static_cast<char>(i));
    EXPECT_EQ(ReadHostSide("/data/w" + std::to_string(i) + ".dat", kFileSize), want)
        << "writer " << i;
  }
}

// --- lane autosizing ---

TEST_F(AdaptiveIoTest, OversizedPayloadGrowsLanesAndSplices) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  conn.SetLaneAutosize(true);
  size_t before = conn.lane_capacity(0);

  std::thread server([&] {
    auto req = conn.ReadRequest();
    ASSERT_TRUE(req.has_value());
    // The payload must have ridden the lane, not the copy path.
    EXPECT_TRUE(req->spliced);
    EXPECT_TRUE(req->data.empty());
    conn.WriteReply(req->unique, FuseReply{});
  });

  FuseRequest req;
  req.opcode = FuseOpcode::kWrite;
  req.spliced = true;
  const size_t kPages = 2 * (before / kernel::kPageSize);  // 2x the lane
  for (size_t i = 0; i < kPages; ++i) {
    req.payload_pages.push_back(splice::PageRef::Alloc(kernel::kPageSize));
  }
  ASSERT_TRUE(conn.SendAndWait(std::move(req)).ok());
  server.join();

  auto stats = conn.stats();
  EXPECT_EQ(stats.lane_growths, 1u);
  EXPECT_EQ(stats.splice_fallbacks, 0u);
  EXPECT_GT(stats.spliced_bytes, 0u);
  EXPECT_GE(conn.lane_capacity(0), kPages * kernel::kPageSize);
  conn.Abort();
}

TEST_F(AdaptiveIoTest, AutosizeOffKeepsLanesFixed) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);  // autosize defaults off at the conn layer
  size_t before = conn.lane_capacity(0);

  std::thread server([&] {
    auto req = conn.ReadRequest();
    ASSERT_TRUE(req.has_value());
    EXPECT_FALSE(req->spliced);  // flattened to the copy path
    conn.WriteReply(req->unique, FuseReply{});
  });
  FuseRequest req;
  req.opcode = FuseOpcode::kWrite;
  req.spliced = true;
  for (size_t i = 0; i < 2 * (before / kernel::kPageSize); ++i) {
    req.payload_pages.push_back(splice::PageRef::Alloc(kernel::kPageSize));
  }
  ASSERT_TRUE(conn.SendAndWait(std::move(req)).ok());
  server.join();
  EXPECT_EQ(conn.stats().lane_growths, 0u);
  EXPECT_GT(conn.stats().splice_fallbacks, 0u);
  EXPECT_EQ(conn.lane_capacity(0), before);
  conn.Abort();
}

TEST_F(AdaptiveIoTest, TinyPipePagesGrowsAtMountToCoverNegotiatedWindow) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.pipe_pages = 1;  // 4KiB — the negotiated 1MiB window would never fit
  Mount(opts);
  EXPECT_GE(conn_->lane_capacity(0),
            static_cast<size_t>(fuse_fs_->readahead_ceiling_pages()) * kernel::kPageSize);
  const std::string want = Pattern(512 * 1024);
  SeedFile("/data/grown.dat", want);
  EXPECT_EQ(ReadThroughMount(*proc_, "/m/data/grown.dat", want.size()), want);
  EXPECT_GT(conn_->stats().spliced_bytes, 0u) << "big windows must still splice";
}

// --- queue-depth stats ---

TEST_F(AdaptiveIoTest, QueueDepthStatsTrackEnqueuedRequests) {
  Mount(FuseMountOptions::Optimized());
  const std::string want = Pattern(64 * 1024);
  SeedFile("/data/depth.dat", want);
  EXPECT_EQ(ReadThroughMount(*proc_, "/m/data/depth.dat", want.size()), want);
  EXPECT_GE(conn_->stats().max_queue_depth, 1u);
  uint64_t per_channel_max = 0;
  for (size_t i = 0; i < conn_->num_channels(); ++i) {
    per_channel_max = std::max(per_channel_max, conn_->channel_max_queue_depth(i));
  }
  EXPECT_EQ(per_channel_max, conn_->stats().max_queue_depth);
}

}  // namespace
}  // namespace cntr::fuse
