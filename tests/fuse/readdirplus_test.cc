// Tests for the READDIRPLUS batched-metadata pipeline: a cold
// readdir-then-stat-every-child tree walk must collapse from one round trip
// per child (the compilebench-read/postmark storm, paper §5.2.2) to
// ⌈K/batch⌉ batched requests, and the attributes primed into the kernel
// caches must honour the server-granted TTLs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

constexpr int kFiles = 256;

class ReaddirPlusTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    conn_ = dev->second;
    fuse_server_ = std::make_unique<FuseServer>(conn_, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", conn_, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  // Seeds a K-entry directory directly on the host, bypassing the mount, so
  // the FUSE side has never looked any of it up (a cold tree).
  void SeedBigDir() {
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/tmp/bigdir", 0755).ok());
    for (int i = 0; i < kFiles; ++i) {
      auto fd = kernel_->Open(*kernel_->init(), "/tmp/bigdir/f" + std::to_string(i),
                              kernel::kOWrOnly | kernel::kOCreat, 0644);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
    }
  }

  // readdir + stat-every-child through the mount; returns the FUSE requests
  // the walk itself issued (directory open/close excluded).
  uint64_t ColdWalkRequests() {
    auto dfd = kernel_->Open(*proc_, "/m/tmp/bigdir", kernel::kORdOnly | kernel::kODirectory);
    EXPECT_TRUE(dfd.ok());
    uint64_t before = conn_->stats().requests;
    auto entries = kernel_->Getdents(*proc_, dfd.value());
    EXPECT_TRUE(entries.ok());
    int statted = 0;
    for (const auto& entry : entries.value()) {
      if (entry.name == "." || entry.name == "..") {
        continue;
      }
      EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp/bigdir/" + entry.name).ok());
      ++statted;
    }
    EXPECT_EQ(statted, kFiles);
    uint64_t walked = conn_->stats().requests - before;
    EXPECT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
    return walked;
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::shared_ptr<FuseConn> conn_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

TEST_F(ReaddirPlusTest, ColdWalkIssuesBatchedRequests) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  ASSERT_TRUE(opts.readdirplus);
  Mount(opts);
  SeedBigDir();
  uint64_t requests = ColdWalkRequests();
  // ⌈K/batch⌉ READDIRPLUS requests cover the listing ("." and ".." ride in
  // the batches) and every subsequent stat is a primed-cache hit.
  uint64_t budget = kFiles / opts.readdirplus_batch + 1;
  EXPECT_LE(requests, budget) << "cold walk must be batched, not per-child";
  EXPECT_GT(cntrfs_->stats().readdirplus, 0u);
}

TEST_F(ReaddirPlusTest, WithoutReaddirPlusEveryChildCostsARoundTrip) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.readdirplus = false;
  Mount(opts);
  SeedBigDir();
  uint64_t requests = ColdWalkRequests();
  // READDIR + one LOOKUP per child at minimum (plus GETATTRs when the
  // attr cache is cold) — the per-child storm READDIRPLUS removes.
  EXPECT_GE(requests, static_cast<uint64_t>(kFiles) + 1);
  EXPECT_EQ(cntrfs_->stats().readdirplus, 0u);
}

TEST_F(ReaddirPlusTest, ListsSameEntriesWithAndWithoutBatching) {
  FuseMountOptions on = FuseMountOptions::Optimized();
  Mount(on);
  SeedBigDir();
  auto dfd = kernel_->Open(*proc_, "/m/tmp/bigdir", kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(dfd.ok());
  auto plus = kernel_->Getdents(*proc_, dfd.value());
  ASSERT_TRUE(plus.ok());
  ASSERT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
  std::vector<std::string> names;
  for (const auto& entry : plus.value()) {
    names.push_back(entry.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names.size(), static_cast<size_t>(kFiles) + 2);  // files + "." + ".."
  EXPECT_TRUE(std::find(names.begin(), names.end(), ".") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "f0") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "f" + std::to_string(kFiles - 1)) !=
              names.end());
}

TEST_F(ReaddirPlusTest, PrimedAttrsExpireAfterTtl) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  Mount(opts);
  SeedBigDir();
  (void)ColdWalkRequests();

  // Within the TTL: a stat of a primed child is a pure cache hit.
  uint64_t before = conn_->stats().requests;
  ASSERT_TRUE(kernel_->Stat(*proc_, "/m/tmp/bigdir/f0").ok());
  EXPECT_EQ(conn_->stats().requests - before, 0u)
      << "stat within attr_ttl_ns must not reach the server";

  // Past the TTL the primed entry and attributes are stale: the kernel must
  // revalidate at the server again.
  kernel_->clock().Advance(2 * opts.attr_ttl_ns);
  before = conn_->stats().requests;
  ASSERT_TRUE(kernel_->Stat(*proc_, "/m/tmp/bigdir/f0").ok());
  EXPECT_GT(conn_->stats().requests - before, 0u)
      << "stat after attr_ttl_ns must revalidate through the server";
}

TEST_F(ReaddirPlusTest, ExactMultipleListingTerminatesWithoutDuplicates) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.readdirplus_batch = 4;
  Mount(opts);
  // 6 children + "." + ".." = 8 entries = exactly 2 batches; the client's
  // final empty probe must terminate the stream, not re-list and duplicate.
  ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/tmp/even", 0755).ok());
  for (int i = 0; i < 6; ++i) {
    auto fd = kernel_->Open(*kernel_->init(), "/tmp/even/f" + std::to_string(i),
                            kernel::kOWrOnly | kernel::kOCreat, 0644);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  }
  auto dfd = kernel_->Open(*proc_, "/m/tmp/even", kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(dfd.ok());
  auto entries = kernel_->Getdents(*proc_, dfd.value());
  ASSERT_TRUE(entries.ok());
  ASSERT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
  std::vector<std::string> names;
  for (const auto& entry : entries.value()) {
    names.push_back(entry.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names.size(), 8u);
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "exact-multiple walk must not duplicate entries";
}

TEST_F(ReaddirPlusTest, SnapshotSurvivesConcurrentUnlinkMidWalk) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/tmp/mut", 0755).ok());
  for (int i = 0; i < 10; ++i) {
    auto fd = kernel_->Open(*kernel_->init(), "/tmp/mut/f" + std::to_string(i),
                            kernel::kOWrOnly | kernel::kOCreat, 0644);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  }
  auto dir = kernel_->Resolve(*kernel_->init(), "/m/tmp/mut");
  ASSERT_TRUE(dir.ok());
  auto* fdir = dynamic_cast<FuseInode*>(dir->inode.get());
  ASSERT_NE(fdir, nullptr);

  // Drive the server's batch protocol directly: snapshot the first window,
  // mutate the directory, then continue the walk with the token.
  FuseRequest first;
  first.opcode = FuseOpcode::kReaddirPlus;
  first.nodeid = fdir->nodeid();
  first.size = 4;
  FuseReply batch1 = cntrfs_->Handle(first);
  ASSERT_EQ(batch1.error, 0);
  ASSERT_EQ(batch1.entries_plus.size(), 4u);
  ASSERT_NE(batch1.fh, 0u) << "full window must carry a continuation token";

  // Unlink a file that has not been served yet (host side).
  ASSERT_TRUE(kernel_->Unlink(*kernel_->init(), "/tmp/mut/f9").ok());

  std::vector<std::string> names;
  for (const auto& dent : batch1.entries_plus) {
    names.push_back(dent.dirent.name);
  }
  uint64_t token = batch1.fh;
  uint64_t cursor = batch1.entries_plus.size();
  while (true) {
    FuseRequest next;
    next.opcode = FuseOpcode::kReaddirPlus;
    next.nodeid = fdir->nodeid();
    next.fh = token;
    next.offset = cursor;
    next.size = 4;
    FuseReply batch = cntrfs_->Handle(next);
    ASSERT_EQ(batch.error, 0);
    for (const auto& dent : batch.entries_plus) {
      names.push_back(dent.dirent.name);
    }
    cursor += batch.entries_plus.size();
    token = batch.fh;
    if (batch.entries_plus.size() < 4) {
      break;
    }
  }
  // The snapshot generation is served to completion: 10 files + "." + "..",
  // no entry skipped or duplicated despite the concurrent unlink.
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names.size(), 12u);
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "f9") != names.end())
      << "the unlinked entry belongs to the snapshot generation";
}

TEST_F(ReaddirPlusTest, RepeatedWalksDoNotLeakServerNodes) {
  Mount(FuseMountOptions::Optimized());
  SeedBigDir();
  // Every READDIRPLUS entry raises the server's per-node lookup count; the
  // FORGETs sent when the kernel drops the inodes must return the full
  // balance (nlookup), or nodes_ grows by K entries per walk forever.
  for (int walk = 0; walk < 3; ++walk) {
    (void)ColdWalkRequests();
    kernel_->dcache().Clear();  // drop the primed children -> queue forgets
  }
  fuse_fs_->FlushForgets();
  // Forgets travel fire-and-forget; give the server threads a moment to
  // drain the queue.
  size_t nodes = cntrfs_->NodeTableSize();
  for (int spin = 0; spin < 2000 && nodes > 8; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    nodes = cntrfs_->NodeTableSize();
  }
  EXPECT_LE(nodes, 8u) << "forget balance must drain the server node table";
}

TEST_F(ReaddirPlusTest, PrimedChildrenResolveToSameInodeAsLookup) {
  Mount(FuseMountOptions::Optimized());
  SeedBigDir();
  (void)ColdWalkRequests();
  // The inode materialized by READDIRPLUS priming and the one a plain path
  // resolution yields must be the same object (nodeid identity map).
  auto a = kernel_->Resolve(*proc_, "/m/tmp/bigdir/f3");
  ASSERT_TRUE(a.ok());
  kernel_->dcache().Clear();
  auto b = kernel_->Resolve(*proc_, "/m/tmp/bigdir/f3");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->inode.get(), b->inode.get());
}

// --- READDIRPLUS adaptivity: plus is batched-stat machinery, and a
// consumer that never stats should not pay for it (ROADMAP; Linux's
// readdirplus_auto heuristic).

TEST_F(ReaddirPlusTest, LsStyleConsumerFallsBackToPlainReaddir) {
  Mount(FuseMountOptions::Optimized());
  SeedBigDir();
  auto List = [&]() {
    auto dfd = kernel_->Open(*proc_, "/m/tmp/bigdir", kernel::kORdOnly | kernel::kODirectory);
    ASSERT_TRUE(dfd.ok());
    auto entries = kernel_->Getdents(*proc_, dfd.value());
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), static_cast<size_t>(kFiles) + 2);
    ASSERT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
  };
  // First listing: no history, the sample walk uses READDIRPLUS.
  List();
  uint64_t plus_after_sample = cntrfs_->stats().readdirplus;
  EXPECT_GT(plus_after_sample, 0u);
  EXPECT_EQ(cntrfs_->stats().readdirs, 0u);
  // Nothing statted any primed child: the directory is being `ls`'d. The
  // second and third listings must ride plain READDIR — no per-child stat
  // tax on the server.
  List();
  List();
  EXPECT_EQ(cntrfs_->stats().readdirplus, plus_after_sample)
      << "pure listings must stop issuing READDIRPLUS after the unconsumed sample";
  EXPECT_GE(cntrfs_->stats().readdirs, 2u);
}

TEST_F(ReaddirPlusTest, StatConsumerKeepsReaddirPlus) {
  Mount(FuseMountOptions::Optimized());
  SeedBigDir();
  // A readdir-then-stat walk consumes the primed attrs each round: the
  // heuristic must keep READDIRPLUS on.
  for (int walk = 0; walk < 3; ++walk) {
    (void)ColdWalkRequests();
  }
  EXPECT_EQ(cntrfs_->stats().readdirs, 0u)
      << "stat-heavy walks must stay on the batched-metadata path";
  EXPECT_GT(cntrfs_->stats().readdirplus, 0u);
}

TEST_F(ReaddirPlusTest, StatTrafficReenablesSuppressedDirectory) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  Mount(opts);
  SeedBigDir();
  auto List = [&]() {
    auto dfd = kernel_->Open(*proc_, "/m/tmp/bigdir", kernel::kORdOnly | kernel::kODirectory);
    ASSERT_TRUE(dfd.ok());
    ASSERT_TRUE(kernel_->Getdents(*proc_, dfd.value()).ok());
    ASSERT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
  };
  List();  // sample walk (plus)
  List();  // unconsumed -> suppressed, plain readdir
  uint64_t plus_before = cntrfs_->stats().readdirplus;
  // Let the primed entry/attr TTLs lapse, then stat a child: the LOOKUP
  // round trip is the FUSE_I_ADVISE_RDPLUS signal — stats are happening
  // here again, so the next listing must return to READDIRPLUS.
  kernel_->clock().Advance(2 * opts.entry_ttl_ns);
  ASSERT_TRUE(kernel_->Stat(*proc_, "/m/tmp/bigdir/f0").ok());
  List();
  EXPECT_GT(cntrfs_->stats().readdirplus, plus_before)
      << "stat-shaped traffic must lift the ls-style suppression";
}

TEST_F(ReaddirPlusTest, SeekdirHandleUsesPlainReaddir) {
  Mount(FuseMountOptions::Optimized());
  SeedBigDir();
  auto dfd = kernel_->Open(*proc_, "/m/tmp/bigdir", kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(dfd.ok());
  // seekdir(): repositioning the directory cursor marks this handle as a
  // seek-heavy consumer — its listings must not re-prime the whole tree.
  ASSERT_TRUE(kernel_->Lseek(*proc_, dfd.value(), 1, kernel::kSeekSet).ok());
  uint64_t plus_before = cntrfs_->stats().readdirplus;
  auto entries = kernel_->Getdents(*proc_, dfd.value());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(cntrfs_->stats().readdirplus, plus_before)
      << "a seeked handle must fall back to plain READDIR";
  EXPECT_GT(cntrfs_->stats().readdirs, 0u);
  ASSERT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
}

}  // namespace
}  // namespace cntr::fuse
