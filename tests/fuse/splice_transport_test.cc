// End-to-end tests for the zero-copy splice transport: spliced READ replies
// must be bit-identical with copy-path replies, spliced WRITEs must land
// the same bytes on the backing filesystem, payloads that do not fit the
// channel lane must fall back to the copy path (still correct), the
// per-channel opt-out must pin traffic to the copy path, and the
// spliced-vs-copied byte accounting must add up.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

// A recognizable per-offset pattern so any page mixup shows up as a
// mismatch, not a plausible-looking run of zeros.
std::string Pattern(size_t size) {
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>('A' + (i / 7 + i / 4096) % 23);
  }
  return out;
}

class SpliceTransportTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    conn_ = dev->second;
    fuse_server_ = std::make_unique<FuseServer>(conn_, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", conn_, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  // Full teardown in dependency order so a test can mount a second, fresh
  // stack (everything above must release the old kernel before it dies).
  void Remount(FuseMountOptions opts) {
    TearDown();
    fuse_fs_.reset();
    fuse_server_.reset();
    conn_.reset();
    cntrfs_.reset();
    proc_.reset();
    server_proc_.reset();
    kernel_.reset();
    Mount(opts);
  }

  // Writes `data` on the host side (through /data, the disk-backed ExtFs,
  // so the server serves it from the shared page cache).
  void SeedFile(const std::string& path, const std::string& data) {
    auto fd = kernel_->Open(*kernel_->init(), path,
                            kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
    ASSERT_TRUE(fd.ok());
    size_t off = 0;
    while (off < data.size()) {
      auto n = kernel_->Write(*kernel_->init(), fd.value(), data.data() + off,
                              data.size() - off);
      ASSERT_TRUE(n.ok());
      off += n.value();
    }
    ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  }

  std::string ReadThroughMount(const std::string& path, size_t size) {
    auto fd = kernel_->Open(*proc_, path, kernel::kORdOnly);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string out(size, '\0');
    size_t off = 0;
    while (off < size) {
      auto n = kernel_->Read(*proc_, fd.value(), out.data() + off, size - off);
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || n.value() == 0) {
        break;
      }
      off += n.value();
    }
    out.resize(off);
    EXPECT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
    return out;
  }

  std::string ReadHostSide(const std::string& path, size_t size) {
    auto fd = kernel_->Open(*kernel_->init(), path, kernel::kORdOnly);
    EXPECT_TRUE(fd.ok());
    std::string out(size, '\0');
    size_t off = 0;
    while (off < size) {
      auto n = kernel_->Read(*kernel_->init(), fd.value(), out.data() + off, size - off);
      EXPECT_TRUE(n.ok());
      if (!n.ok() || n.value() == 0) {
        break;
      }
      off += n.value();
    }
    out.resize(off);
    EXPECT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
    return out;
  }

  void WriteThroughMount(const std::string& path, const std::string& data) {
    auto fd = kernel_->Open(*proc_, path,
                            kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    size_t off = 0;
    while (off < data.size()) {
      auto n = kernel_->Write(*proc_, fd.value(), data.data() + off, data.size() - off);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      off += n.value();
    }
    ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::shared_ptr<FuseConn> conn_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

constexpr size_t kFileSize = 512 * 1024 + 1234;  // unaligned tail on purpose

TEST_F(SpliceTransportTest, SplicedReadIsBitIdenticalWithCopyRead) {
  const std::string want = Pattern(kFileSize);
  // Copy path first.
  {
    FuseMountOptions opts = FuseMountOptions::Optimized();
    opts.splice_read = false;
    opts.splice_move = false;
    Mount(opts);
    ASSERT_FALSE(fuse_fs_->splice_read_enabled());
    SeedFile("/data/copy.dat", want);
    EXPECT_EQ(ReadThroughMount("/m/data/copy.dat", want.size()), want);
    EXPECT_EQ(conn_->stats().spliced_bytes, 0u);
  }
  // Spliced path: same bytes, and the payload actually rode the lanes.
  {
    FuseMountOptions opts = FuseMountOptions::Optimized();
    Remount(opts);
    ASSERT_TRUE(fuse_fs_->splice_read_enabled());
    ASSERT_TRUE(fuse_fs_->splice_move_enabled());
    SeedFile("/data/spliced.dat", want);
    EXPECT_EQ(ReadThroughMount("/m/data/spliced.dat", want.size()), want);
    EXPECT_GT(conn_->stats().spliced_bytes, 0u);
    EXPECT_GT(cntrfs_->stats().spliced_reads, 0u);
  }
}

TEST_F(SpliceTransportTest, RereadAfterSplicedInstallServesCachedPages) {
  const std::string want = Pattern(kFileSize);
  Mount(FuseMountOptions::Optimized());
  SeedFile("/data/warm.dat", want);
  EXPECT_EQ(ReadThroughMount("/m/data/warm.dat", want.size()), want);
  uint64_t requests_after_first = conn_->stats().requests;
  // The stolen/aliased pages are real cache entries: a re-read is served
  // from the kernel page cache with no further round trips.
  EXPECT_EQ(ReadThroughMount("/m/data/warm.dat", want.size()), want);
  EXPECT_EQ(conn_->stats().requests, requests_after_first + 2);  // open + release only
}

TEST_F(SpliceTransportTest, LaneTooSmallFallsBackToCopyAndStaysCorrect) {
  // Page-aligned size: every READ payload is a full multi-page readahead
  // window (the sub-page EOF tail of an unaligned file would fit even a
  // tiny lane). Autosizing is pinned off — this test exercises the copy
  // fallback itself; the growth path is covered in adaptive_io_test.
  const std::string want = Pattern(512 * 1024);
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.pipe_pages = 1;  // 4KB lane vs. multi-page readahead payloads: never fits
  opts.lane_autosize = false;
  Mount(opts);
  SeedFile("/data/tiny-lane.dat", want);
  EXPECT_EQ(ReadThroughMount("/m/data/tiny-lane.dat", want.size()), want);
  auto stats = conn_->stats();
  EXPECT_EQ(stats.spliced_bytes, 0u) << "no READ payload fits a one-page lane";
  EXPECT_GT(stats.copied_bytes, 0u);
  EXPECT_GT(stats.splice_fallbacks, 0u);
}

TEST_F(SpliceTransportTest, PerChannelOptOutPinsTrafficToCopyPath) {
  const std::string want = Pattern(kFileSize);
  Mount(FuseMountOptions::Optimized());
  conn_->SetChannelSplice(0, false);  // single channel: everything opted out
  SeedFile("/data/optout.dat", want);
  EXPECT_EQ(ReadThroughMount("/m/data/optout.dat", want.size()), want);
  EXPECT_EQ(conn_->stats().spliced_bytes, 0u);
  EXPECT_EQ(cntrfs_->stats().spliced_reads, 0u);
  // Opt back in: the next cold read splices again.
  conn_->SetChannelSplice(0, true);
  kernel_->page_cache().DropAllClean();
  EXPECT_EQ(ReadThroughMount("/m/data/optout.dat", want.size()), want);
  EXPECT_GT(conn_->stats().spliced_bytes, 0u);
}

TEST_F(SpliceTransportTest, SplicedWriteThroughLandsIdenticalBytes) {
  const std::string want = Pattern(kFileSize);
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.writeback_cache = false;
  opts.splice_write = true;
  Mount(opts);
  ASSERT_TRUE(fuse_fs_->splice_write_enabled());
  WriteThroughMount("/m/data/wt.dat", want);
  EXPECT_EQ(ReadHostSide("/data/wt.dat", want.size()), want);
  EXPECT_GT(cntrfs_->stats().spliced_writes, 0u);
  EXPECT_GT(conn_->stats().spliced_bytes, 0u);
}

TEST_F(SpliceTransportTest, SplicedWritebackFlushLandsIdenticalBytes) {
  const std::string want = Pattern(kFileSize);
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.splice_write = true;
  Mount(opts);
  WriteThroughMount("/m/data/wb.dat", want);  // close flushes the writeback cache
  EXPECT_EQ(ReadHostSide("/data/wb.dat", want.size()), want);
  EXPECT_GT(cntrfs_->stats().spliced_writes, 0u);
}

TEST_F(SpliceTransportTest, WriteAfterSplicedFlushDoesNotCorruptServerCopy) {
  // The flush shares the kernel's cache pages with the server's cache
  // (alias + COW). A later kernel-side rewrite must not mutate the server's
  // already-landed bytes in place.
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.splice_write = true;
  Mount(opts);
  std::string v1(64 * 1024, '1');
  auto fd = kernel_->Open(*proc_, "/m/data/cow.dat",
                          kernel::kORdWr | kernel::kOCreat | kernel::kOTrunc, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), v1.data(), v1.size()).ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());  // spliced flush
  EXPECT_EQ(ReadHostSide("/data/cow.dat", v1.size()), v1);
  // Rewrite through the mount, dirtying the same kernel pages again.
  std::string v2(64 * 1024, '2');
  ASSERT_TRUE(kernel_->Pwrite(*proc_, fd.value(), v2.data(), v2.size(), 0).ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  EXPECT_EQ(ReadHostSide("/data/cow.dat", v2.size()), v2);
}

TEST_F(SpliceTransportTest, SplicedReaddirPlusListsIdentically) {
  FuseMountOptions copy_opts = FuseMountOptions::Optimized();
  copy_opts.splice_read = false;
  copy_opts.splice_move = false;
  Mount(copy_opts);
  auto SeedListing = [&]() {
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/data/listing", 0755).ok());
    for (int i = 0; i < 40; ++i) {
      SeedFile("/data/listing/f" + std::to_string(i), "x");
    }
  };
  SeedListing();
  auto ListNames = [&]() {
    auto dfd = kernel_->Open(*proc_, "/m/data/listing", kernel::kORdOnly | kernel::kODirectory);
    EXPECT_TRUE(dfd.ok());
    auto entries = kernel_->Getdents(*proc_, dfd.value());
    EXPECT_TRUE(entries.ok());
    std::vector<std::string> names;
    for (const auto& e : entries.value()) {
      names.push_back(e.name + "/" + std::to_string(e.ino) +
                      "/" + std::to_string(static_cast<int>(e.type)));
    }
    EXPECT_TRUE(kernel_->Close(*proc_, dfd.value()).ok());
    std::sort(names.begin(), names.end());
    return names;
  };
  auto copy_names = ListNames();
  EXPECT_EQ(copy_names.size(), 42u);  // 40 files + "." + ".."

  // Fresh kernel: identical tree, spliced transport. The inode numbers are
  // allocated in the same order, so the listings compare exactly.
  Remount(FuseMountOptions::Optimized());
  SeedListing();
  auto spliced_names = ListNames();
  EXPECT_EQ(spliced_names, copy_names) << "packed direntplus stream must decode identically";
  EXPECT_GT(conn_->stats().spliced_bytes, 0u) << "the listing payload rode the lane";
}

TEST_F(SpliceTransportTest, SpliceOffMountNeverTouchesLanes) {
  const std::string want = Pattern(64 * 1024);
  FuseMountOptions opts = FuseMountOptions::Baseline();
  Mount(opts);
  ASSERT_FALSE(fuse_fs_->splice_read_enabled());
  ASSERT_FALSE(fuse_fs_->splice_write_enabled());
  SeedFile("/data/off.dat", want);
  EXPECT_EQ(ReadThroughMount("/m/data/off.dat", want.size()), want);
  WriteThroughMount("/m/data/off-w.dat", want);
  EXPECT_EQ(ReadHostSide("/data/off-w.dat", want.size()), want);
  auto stats = conn_->stats();
  EXPECT_EQ(stats.spliced_bytes, 0u);
  EXPECT_EQ(stats.splice_fallbacks, 0u);
  EXPECT_EQ(cntrfs_->stats().spliced_reads, 0u);
  EXPECT_EQ(cntrfs_->stats().spliced_writes, 0u);
}

}  // namespace
}  // namespace cntr::fuse
