// FuseServerPool (docs/robustness.md "Fleet resilience"): one elastic
// worker pool over many mounts. Covered here: DRR fairness across tenants,
// per-tenant admission budgets, watermark shedding with hysteresis,
// quarantine → reconnect → terminal lifecycle, cross-tenant isolation when
// one mount is killed or stalled, spin-budget backoff when pool threads are
// scarcer than channels, dynamic channel scaling, elastic thread growth,
// and the fleet kill-at-op-N sweep over the pool injection points.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fault/fault.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server_pool.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

// Replies instantly; optionally sleeps wall time first (a stalled tenant).
class EchoHandler : public FuseHandler {
 public:
  FuseReply Handle(const FuseRequest&) override {
    int stall = stall_ms.load();
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    handled_.fetch_add(1);
    return FuseReply{};
  }

  std::atomic<int> stall_ms{0};
  uint64_t handled() const { return handled_.load(); }

 private:
  std::atomic<uint64_t> handled_{0};
};

// Blocks every dispatch until opened — lets a test pile up a backlog with
// deterministic queue depths.
class GateHandler : public FuseHandler {
 public:
  FuseReply Handle(const FuseRequest&) override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
    handled_.fetch_add(1);
    return FuseReply{};
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  uint64_t handled() const { return handled_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<uint64_t> handled_{0};
};

FuseRequest ForgetFrom(kernel::Pid pid) {
  FuseRequest req;
  req.opcode = FuseOpcode::kForget;
  req.pid = pid;
  req.forgets.push_back(FuseRequest::Forget{7, 1});
  return req;
}

FuseServerPoolOptions ManualPool() {
  FuseServerPoolOptions opts;
  opts.controller_interval_ms = 0;  // tests drive RunControllerPass()
  opts.reconnect_backoff_ms = 0;    // no real-time waits in tests
  return opts;
}

TEST(FuseServerPoolTest, SharedWorkersServeEveryMount) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.min_threads = 2;
  FuseServerPool pool(opts);

  constexpr int kMounts = 3;
  constexpr int kRequests = 30;
  std::vector<std::shared_ptr<FuseConn>> conns;
  std::vector<std::unique_ptr<EchoHandler>> handlers;
  for (int i = 0; i < kMounts; ++i) {
    conns.push_back(std::make_shared<FuseConn>(&clock, &costs, 2));
    handlers.push_back(std::make_unique<EchoHandler>());
    uint64_t id = pool.AddMount(conns.back(), handlers.back().get(),
                                /*weight=*/1, /*admission_budget=*/4);
    EXPECT_EQ(pool.mount_state(id), MountState::kActive);
    EXPECT_EQ(conns.back()->admission_budget(), 4u);
  }
  ASSERT_EQ(pool.num_mounts(), static_cast<size_t>(kMounts));

  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kMounts; ++i) {
    clients.emplace_back([&, i] {
      auto lane = std::make_shared<SimClock::Lane>();
      SimClock::LaneScope scope(lane);
      for (int r = 0; r < kRequests; ++r) {
        FuseRequest req;
        req.opcode = FuseOpcode::kGetattr;
        req.pid = static_cast<kernel::Pid>(100 + i);
        if (!conns[i]->SendAndWait(std::move(req)).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(errors.load(), 0);
  for (const auto& h : handlers) {
    EXPECT_EQ(h->handled(), static_cast<uint64_t>(kRequests));
  }
  EXPECT_EQ(pool.stats().dispatches, static_cast<uint64_t>(kMounts * kRequests));
  pool.Stop();
}

TEST(FuseServerPoolTest, HardWatermarkShedsNoisiestTenantWithHysteresis) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.min_threads = 1;
  opts.max_threads = 1;
  opts.soft_watermark = 4;
  opts.hard_watermark = 8;
  FuseServerPool pool(opts);

  GateHandler gate;
  auto noisy = std::make_shared<FuseConn>(&clock, &costs, 1);
  uint64_t id = pool.AddMount(noisy, &gate);

  // Back the pool up: the worker pops one DRR batch and blocks on the gate;
  // everything else queues.
  for (int i = 0; i < 20; ++i) {
    noisy->SendNoReply(ForgetFrom(1));
  }
  while (pool.queued_depth() < opts.hard_watermark) {
    std::this_thread::yield();
  }

  pool.RunControllerPass();
  EXPECT_EQ(pool.mount_state(id), MountState::kDeprioritized);
  EXPECT_TRUE(noisy->shedding_new_requests());
  EXPECT_EQ(pool.stats().hard_sheds, 1u);

  // While shedding, a brand-new request bounces with ETIMEDOUT instead of
  // joining the drowning queue.
  FuseRequest req;
  req.opcode = FuseOpcode::kGetattr;
  req.pid = 2;
  EXPECT_EQ(noisy->SendAndWait(std::move(req)).error(), ETIMEDOUT);
  EXPECT_GE(noisy->stats().shed_rejects, 1u);

  // Drain, then hysteresis: below soft/2 the tenant is restored.
  gate.Open();
  while (noisy->queued_depth() != 0 || gate.handled() < 20) {
    std::this_thread::yield();
  }
  pool.RunControllerPass();
  EXPECT_EQ(pool.mount_state(id), MountState::kActive);
  EXPECT_FALSE(noisy->shedding_new_requests());
  pool.Stop();
}

TEST(FuseServerPoolTest, QuarantineReconnectRestoresService) {
  SimClock clock;
  CostModel costs;
  FuseServerPool pool(ManualPool());

  EchoHandler handler;
  auto conn = std::make_shared<FuseConn>(&clock, &costs, 2);
  uint64_t id = pool.AddMount(conn, &handler);
  std::shared_ptr<FuseConn> replacement;
  pool.SetReconnectHook(id, [&] {
    replacement = std::make_shared<FuseConn>(&clock, &costs, 2);
    return pool.AdoptConn(id, replacement);
  });

  // Crash the mount's filesystem.
  conn->Abort();
  pool.RunControllerPass();
  EXPECT_EQ(pool.mount_state(id), MountState::kQuarantined);
  EXPECT_EQ(pool.stats().quarantines, 1u);

  // Next pass runs the hook (backoff is zero): fresh transport, active again.
  pool.RunControllerPass();
  ASSERT_EQ(pool.mount_state(id), MountState::kActive);
  EXPECT_EQ(pool.stats().reconnects, 1u);
  EXPECT_EQ(pool.mount_reconnect_attempts(id), 0u);
  ASSERT_NE(replacement, nullptr);

  FuseRequest req;
  req.opcode = FuseOpcode::kGetattr;
  req.pid = 9;
  EXPECT_TRUE(replacement->SendAndWait(std::move(req)).ok());
  EXPECT_EQ(handler.handled(), 1u);
  pool.Stop();
}

TEST(FuseServerPoolTest, ExhaustedRetriesParkTheMountTerminal) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.max_reconnect_attempts = 2;
  FuseServerPool pool(opts);

  EchoHandler handler;
  auto conn = std::make_shared<FuseConn>(&clock, &costs, 1);
  uint64_t id = pool.AddMount(conn, &handler);
  pool.SetReconnectHook(id, [] { return Status::Error(EIO, "device gone"); });

  conn->Abort();
  pool.RunControllerPass();  // quarantine
  pool.RunControllerPass();  // attempt 1 fails
  EXPECT_EQ(pool.mount_state(id), MountState::kQuarantined);
  EXPECT_EQ(pool.mount_reconnect_attempts(id), 1u);
  pool.RunControllerPass();  // attempt 2 fails -> terminal
  EXPECT_EQ(pool.mount_state(id), MountState::kTerminal);
  EXPECT_EQ(pool.stats().reconnect_failures, 2u);
  EXPECT_EQ(pool.stats().terminal, 1u);
  // Terminal is sticky: further passes neither retry nor reschedule.
  pool.RunControllerPass();
  EXPECT_EQ(pool.mount_state(id), MountState::kTerminal);
  EXPECT_EQ(pool.stats().reconnect_failures, 2u);
  pool.Stop();
}

// Regression: the reconnect hook captures a raw session pointer that dies
// the moment RemoveMount returns (attach.cc's fleet-mode contract). The
// controller must publish hook_active BEFORE its quarantined->reconnecting
// CAS and must never blind-store over kDetached afterwards; otherwise
// RemoveMount can slip between the CAS and the flag, skip the wait, and
// the hook runs against freed memory. Hammer the interleaving — ASan/TSan
// turn any regression into a hard failure.
TEST(FuseServerPoolTest, RemoveMountNeverRacesReconnectHook) {
  SimClock clock;
  CostModel costs;
  struct FakeSession {
    std::atomic<uint64_t> magic{0x5e55105u};
  };
  for (int iter = 0; iter < 200; ++iter) {
    FuseServerPool pool(ManualPool());
    EchoHandler handler;
    auto conn = std::make_shared<FuseConn>(&clock, &costs, 1);
    uint64_t id = pool.AddMount(conn, &handler);
    auto* session = new FakeSession();
    pool.SetReconnectHook(id, [session] {
      // Must only ever observe a live session: RemoveMount waits the hook
      // out before the owner frees it.
      EXPECT_EQ(session->magic.load(), 0x5e55105u);
      return Status::Ok();
    });
    conn->Abort();
    pool.RunControllerPass();  // -> kQuarantined (zero backoff: next pass reconnects)
    ASSERT_EQ(pool.mount_state(id), MountState::kQuarantined);

    std::thread controller([&] { pool.RunControllerPass(); });
    std::thread remover([&] { pool.RemoveMount(id); });
    remover.join();
    // The hook dies with the mount: once RemoveMount returned, the session
    // is freed even if the controller pass is still finishing.
    session->magic.store(0xdead);
    delete session;
    controller.join();
    EXPECT_EQ(pool.num_mounts(), 0u);
    pool.Stop();
  }
}

// The grow path doubles the channel count; from a non-power-of-two start
// the doubling must clamp at the autoscale ceiling (16), not overshoot it.
TEST(FuseServerPoolTest, ChannelAutoscaleClampsDoublingAtCeiling) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.min_threads = 1;
  opts.max_threads = 1;
  opts.autoscale_channels = true;
  opts.soft_watermark = 1000;  // scaling, not shedding
  opts.hard_watermark = 2000;
  FuseServerPool pool(opts);

  EchoHandler handler;
  auto conn = std::make_shared<FuseConn>(&clock, &costs, 12);
  // Saturate one channel's high-water (>= 4 x 12 channels) before the pool
  // serves the mount, so the grow trigger is deterministic.
  for (int i = 0; i < 48; ++i) {
    conn->SendNoReply(ForgetFrom(1));
  }
  pool.AddMount(conn, &handler);
  while (conn->queued_depth() != 0 || handler.handled() < 48) {
    std::this_thread::yield();
  }

  pool.RunControllerPass();
  EXPECT_EQ(conn->num_channels(), 16u);  // min(12 * 2, ceiling), not 24
  pool.RunControllerPass();
  EXPECT_EQ(conn->num_channels(), 16u);  // at the ceiling: growth stops
  pool.Stop();
}

// Cross-tenant isolation: killing or stalling one of N mounts must leave the
// survivors' latency distribution and throughput intact (the ≤10% fleet
// acceptance bound; the bench panel guards the same property end to end).
class IsolationTest : public ::testing::Test {
 protected:
  static constexpr int kTenants = 4;
  static constexpr int kRequests = 40;

  void SetUp() override {
    FuseServerPoolOptions opts = ManualPool();
    opts.min_threads = 4;
    pool_ = std::make_unique<FuseServerPool>(opts);
    for (int i = 0; i < kTenants; ++i) {
      conns_.push_back(std::make_shared<FuseConn>(&clock_, &costs_, 2));
      handlers_.push_back(std::make_unique<EchoHandler>());
      ids_.push_back(pool_->AddMount(conns_.back(), handlers_.back().get()));
      // One persistent lane per tenant: phases share the tenant's virtual
      // timeline, so phase 2 does not re-pay phase 1's channel occupancy.
      lanes_.push_back(std::make_shared<SimClock::Lane>());
    }
  }

  void TearDown() override { pool_->Stop(); }

  // Runs one client per tenant in `tenants`; returns per-tenant p99 virtual
  // latency (ns). Requests that error are counted, not timed.
  struct Phase {
    std::vector<uint64_t> p99_ns;
    std::vector<int> completed;
    std::vector<int> errors;
  };
  Phase RunPhase(const std::vector<int>& tenants) {
    Phase out;
    out.p99_ns.assign(kTenants, 0);
    out.completed.assign(kTenants, 0);
    out.errors.assign(kTenants, 0);
    std::vector<std::thread> clients;
    for (int i : tenants) {
      clients.emplace_back([&, i] {
        SimClock::LaneScope scope(lanes_[i]);
        std::vector<uint64_t> lat;
        for (int r = 0; r < kRequests; ++r) {
          FuseRequest req;
          req.opcode = FuseOpcode::kGetattr;
          req.pid = static_cast<kernel::Pid>(200 + i);
          uint64_t before = clock_.NowNs();
          if (conns_[i]->SendAndWait(std::move(req)).ok()) {
            lat.push_back(clock_.NowNs() - before);
            ++out.completed[i];
          } else {
            ++out.errors[i];
          }
        }
        if (!lat.empty()) {
          std::sort(lat.begin(), lat.end());
          out.p99_ns[i] = lat[(lat.size() * 99) / 100 == lat.size()
                                  ? lat.size() - 1
                                  : (lat.size() * 99) / 100];
        }
      });
    }
    for (auto& t : clients) {
      t.join();
    }
    return out;
  }

  SimClock clock_;
  CostModel costs_;
  std::unique_ptr<FuseServerPool> pool_;
  std::vector<std::shared_ptr<FuseConn>> conns_;
  std::vector<std::unique_ptr<EchoHandler>> handlers_;
  std::vector<uint64_t> ids_;
  std::vector<std::shared_ptr<SimClock::Lane>> lanes_;
};

TEST_F(IsolationTest, KillingOneTenantLeavesSurvivorsUnharmed) {
  std::vector<int> all{0, 1, 2, 3};
  Phase healthy = RunPhase(all);
  for (int i : all) {
    ASSERT_EQ(healthy.completed[i], kRequests);
  }

  // Tenant 0 crashes; the controller quarantines it.
  conns_[0]->Abort();
  pool_->RunControllerPass();
  ASSERT_EQ(pool_->mount_state(ids_[0]), MountState::kQuarantined);

  std::vector<int> survivors{1, 2, 3};
  Phase degraded = RunPhase(survivors);
  for (int i : survivors) {
    EXPECT_EQ(degraded.completed[i], kRequests) << "survivor " << i;
    EXPECT_EQ(degraded.errors[i], 0) << "survivor " << i;
    // ≤10% p99 degradation — the fleet acceptance bound.
    EXPECT_LE(degraded.p99_ns[i], healthy.p99_ns[i] + healthy.p99_ns[i] / 10)
        << "survivor " << i;
  }
  // The dead tenant fails fast instead of hanging.
  FuseRequest req;
  req.pid = 200;
  EXPECT_EQ(conns_[0]->SendAndWait(std::move(req)).error(), ENOTCONN);
}

TEST_F(IsolationTest, StalledTenantDoesNotDragSurvivors) {
  std::vector<int> all{0, 1, 2, 3};
  Phase healthy = RunPhase(all);

  // Tenant 0's handler wedges 2ms (wall time) per request: it hogs at most
  // one worker at a time while the other workers keep the survivors fed.
  handlers_[0]->stall_ms.store(2);
  std::thread stalled([&] {
    SimClock::LaneScope scope(lanes_[0]);
    for (int r = 0; r < 8; ++r) {
      FuseRequest req;
      req.opcode = FuseOpcode::kGetattr;
      req.pid = 200;
      (void)conns_[0]->SendAndWait(std::move(req));
    }
  });
  std::vector<int> survivors{1, 2, 3};
  Phase degraded = RunPhase(survivors);
  stalled.join();
  for (int i : survivors) {
    EXPECT_EQ(degraded.completed[i], kRequests) << "survivor " << i;
    EXPECT_EQ(degraded.errors[i], 0) << "survivor " << i;
    EXPECT_LE(degraded.p99_ns[i], healthy.p99_ns[i] + healthy.p99_ns[i] / 10)
        << "survivor " << i;
  }
}

TEST(FuseServerPoolTest, SpinBudgetBacksOffWhenThreadsAreScarce) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  ASSERT_GT(conn.ConfigureRing(64), 0u);
  // Undeclared or ample parallelism: the configured budget stands.
  EXPECT_EQ(conn.effective_ring_spin_budget(), kDefaultRingSpinBudget);
  conn.SetServerParallelism(4);
  EXPECT_EQ(conn.effective_ring_spin_budget(), kDefaultRingSpinBudget);
  // Fewer pool threads than channels: spinning a full budget per channel
  // would burn CPU no reaper can answer — the budget scales down.
  conn.SetServerParallelism(2);
  EXPECT_EQ(conn.effective_ring_spin_budget(), kDefaultRingSpinBudget / 2);
  conn.SetServerParallelism(1);
  EXPECT_EQ(conn.effective_ring_spin_budget(), kDefaultRingSpinBudget / 4);
  // Back to dedicated serving: the full budget returns.
  conn.SetServerParallelism(0);
  EXPECT_EQ(conn.effective_ring_spin_budget(), kDefaultRingSpinBudget);
  conn.Abort();
}

TEST(FuseServerPoolTest, SpinBudgetBackoffNeverReachesZero) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  conn.SetServerParallelism(1);
  ASSERT_GT(conn.ConfigureRing(64, /*spin_budget=*/2), 0u);
  EXPECT_EQ(conn.effective_ring_spin_budget(), 1u);
  conn.Abort();
}

TEST(FuseServerPoolTest, DynamicChannelScalingGrowsAndShrinks) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.min_threads = 1;
  opts.max_threads = 1;
  opts.autoscale_channels = true;
  // High watermarks: this test is about scaling, not shedding.
  opts.soft_watermark = 1000;
  opts.hard_watermark = 2000;
  FuseServerPool pool(opts);

  EchoHandler handler;
  auto conn = std::make_shared<FuseConn>(&clock, &costs, 1);
  // Pile depth onto the single channel BEFORE the pool serves the mount, so
  // the max-queue-depth high-water is deterministic.
  for (int i = 0; i < 8; ++i) {
    conn->SendNoReply(ForgetFrom(1));
  }
  ASSERT_GE(conn->channel_max_queue_depth(0), 4u);
  uint64_t id = pool.AddMount(conn, &handler);
  while (conn->queued_depth() != 0 || handler.handled() < 8) {
    std::this_thread::yield();
  }

  // Quiet now, but the high-water says the single channel saturated: grow.
  pool.RunControllerPass();
  EXPECT_EQ(conn->num_channels(), 2u);
  EXPECT_EQ(pool.stats().channel_reshapes, 1u);

  // Sustained quiet: the clone is given back.
  for (int i = 0; i < 12 && conn->num_channels() != 1; ++i) {
    pool.RunControllerPass();
  }
  EXPECT_EQ(conn->num_channels(), 1u);
  EXPECT_EQ(pool.stats().channel_reshapes, 2u);
  EXPECT_EQ(pool.mount_state(id), MountState::kActive);
  pool.Stop();
}

TEST(FuseServerPoolTest, ElasticThreadsGrowUnderBacklog) {
  SimClock clock;
  CostModel costs;
  FuseServerPoolOptions opts = ManualPool();
  opts.min_threads = 1;
  opts.max_threads = 4;
  // Watermarks out of the way so the growth path is what reacts.
  opts.soft_watermark = 1000;
  opts.hard_watermark = 2000;
  FuseServerPool pool(opts);
  ASSERT_EQ(pool.num_threads(), 1);

  GateHandler gate;
  auto conn = std::make_shared<FuseConn>(&clock, &costs, 1);
  uint64_t id = pool.AddMount(conn, &gate);
  for (int i = 0; i < 60; ++i) {
    conn->SendNoReply(ForgetFrom(1));
  }
  // The lone worker is stuck behind the gate with a full batch; the queue
  // holds far more than one thread can be expected to drain.
  while (pool.queued_depth() < 32) {
    std::this_thread::yield();
  }
  pool.RunControllerPass();
  EXPECT_GT(pool.num_threads(), 1);
  EXPECT_GE(pool.stats().thread_growths, 1u);
  EXPECT_EQ(pool.mount_state(id), MountState::kActive);

  gate.Open();
  while (conn->queued_depth() != 0 || gate.handled() < 60) {
    std::this_thread::yield();
  }
  pool.Stop();
}

// --- fleet kill-at-op-N sweep over the full stack -------------------------

// 8 kernel-mounted CntrFS instances served by one pool; the pool injection
// points fire at the Nth hit while a mixed workload runs on every mount.
// Faulted mounts may error — never hang — and every mount must return to
// service through the pool's own quarantine/reconnect machinery.
class FleetSweepTest : public ::testing::Test {
 protected:
  static constexpr int kMounts = 8;

  struct FleetMount {
    std::unique_ptr<core::CntrFsServer> cntrfs;
    std::shared_ptr<FuseFs> fs;
    uint64_t id = 0;
  };

  void SetUpFleet() {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    FuseServerPoolOptions opts = ManualPool();
    opts.min_threads = 2;
    opts.max_threads = 4;
    opts.quarantine_after_faults = 1;
    pool_ = std::make_unique<FuseServerPool>(opts);
    for (int i = 0; i < kMounts; ++i) {
      auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
      ASSERT_TRUE(server.ok());
      mounts_[i].cntrfs = std::move(server).value();
      auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
      ASSERT_TRUE(dev.ok());
      mounts_[i].id = pool_->AddMount(dev->second, mounts_[i].cntrfs.get());
      std::string path = "/flt" + std::to_string(i);
      ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), path, 0755).ok());
      auto fs = MountFuse(kernel_.get(), *kernel_->init(), path, dev->second,
                          FuseMountOptions::Optimized());
      ASSERT_TRUE(fs.ok()) << fs.status().ToString();
      mounts_[i].fs = std::move(fs).value();
      const int idx = i;
      pool_->SetReconnectHook(mounts_[i].id, [this, idx] {
        auto dev2 = OpenFuseDevice(kernel_.get(), *kernel_->init());
        if (!dev2.ok()) {
          return dev2.status();
        }
        Status adopt = pool_->AdoptConn(mounts_[idx].id, dev2->second);
        if (!adopt.ok()) {
          return adopt;
        }
        return mounts_[idx].fs->Reconnect(dev2->second);
      });
    }
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDownFleet() {
    if (kernel_ != nullptr) {
      kernel_->faults().DisarmAll();
    }
    for (auto& m : mounts_) {
      if (m.fs != nullptr) {
        (void)m.fs->Shutdown();
      }
    }
    if (pool_ != nullptr) {
      for (auto& m : mounts_) {
        if (m.fs != nullptr) {
          pool_->RemoveMount(m.id);
        }
      }
      pool_->Stop();
    }
    for (auto& m : mounts_) {
      m.fs.reset();
      m.cntrfs.reset();
      m.id = 0;
    }
    pool_.reset();
    proc_.reset();
    server_proc_.reset();
    kernel_.reset();
  }

  void TearDown() override { TearDownFleet(); }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<FuseServerPool> pool_;
  FleetMount mounts_[kMounts];
};

TEST_F(FleetSweepTest, FleetKillAtOpNSweepDegradesCleanly) {
  struct Case {
    const char* point;
    fault::FaultAction action;
  };
  for (const Case& c : {Case{"fuse.pool.dispatch", fault::FaultAction::kKill},
                        Case{"fuse.pool.dispatch", fault::FaultAction::kFail},
                        Case{"fuse.pool.quarantine", fault::FaultAction::kFail}}) {
    for (uint64_t n : {uint64_t{1}, uint64_t{3}}) {
      SCOPED_TRACE(std::string(c.point) + " @ op " + std::to_string(n));
      TearDownFleet();
      SetUpFleet();

      fault::FaultSpec spec;
      spec.action = c.action;
      spec.error = EIO;
      spec.fail_at = n;
      spec.one_shot = true;
      kernel_->faults().Arm(c.point, spec);

      if (std::string(c.point) == "fuse.pool.quarantine") {
        // The point only fires on reconnect attempts: crash enough mounts
        // that the Nth attempt exists.
        for (int i = 0; i < 3; ++i) {
          mounts_[i].fs->conn().Abort();
        }
      }

      // Mixed workload on every mount; any op may fail, none may hang.
      for (int i = 0; i < kMounts; ++i) {
        std::string base = "/flt" + std::to_string(i) + "/tmp";
        for (int f = 0; f < 2; ++f) {
          std::string path = base + "/f" + std::to_string(f);
          auto fd = kernel_->Open(*proc_, path, kernel::kORdWr | kernel::kOCreat, 0644);
          if (fd.ok()) {
            std::string data(4096, 'x');
            (void)kernel_->Write(*proc_, fd.value(), data.data(), data.size());
            (void)kernel_->Fsync(*proc_, fd.value());
            (void)kernel_->Close(*proc_, fd.value());
          }
          (void)kernel_->Stat(*proc_, path);
        }
      }

      // Revival runs with the fault still armed: the quarantine point fires
      // on reconnect attempts, so disarming first would skip it. One-shot
      // specs fire once and the retry machinery absorbs the failure.
      bool all_active = false;
      for (int pass = 0; pass < 30 && !all_active; ++pass) {
        pool_->RunControllerPass();
        all_active = true;
        for (auto& m : mounts_) {
          if (pool_->mount_state(m.id) != MountState::kActive) {
            all_active = false;
          }
        }
      }
      ASSERT_TRUE(all_active) << "a mount never returned to service";
      kernel_->faults().DisarmAll();

      // Whatever was injected, every mount serves again and leaked nothing.
      for (int i = 0; i < kMounts; ++i) {
        std::string path = "/flt" + std::to_string(i) + "/tmp/alive";
        auto fd = kernel_->Open(*proc_, path, kernel::kOWrOnly | kernel::kOCreat, 0644);
        ASSERT_TRUE(fd.ok()) << "mount " << i << ": " << fd.status().ToString();
        ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), "ok", 2).ok()) << "mount " << i;
        ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok()) << "mount " << i;
        ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok()) << "mount " << i;
        EXPECT_EQ(mounts_[i].fs->conn().lane_bytes_in_flight(), 0u) << "mount " << i;
      }
    }
  }
}

}  // namespace
}  // namespace cntr::fuse
