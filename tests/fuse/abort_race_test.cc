// Abort-reconciliation races (docs/robustness.md, TSan matrix): Abort()
// against parked waiters, against in-flight spliced I/O, and against a
// concurrent channel reshape. The assertions are weak on purpose — every
// operation resolves (no hangs), no lane capacity stays parked — because
// the real verdict comes from running this binary under ThreadSanitizer in
// CI, where any lock-order inversion or unsynchronized access fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

TEST(AbortRaceTest, AbortWakesEveryParkedWaiter) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  constexpr int kWaiters = 8;
  std::atomic<int> resolved{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
      resolved.fetch_add(1);
    });
  }
  // Let the waiters actually park before pulling the plug.
  while (conn.stats().requests < kWaiters) {
    std::this_thread::yield();
  }
  conn.Abort();
  for (auto& t : waiters) {
    t.join();
  }
  EXPECT_EQ(resolved.load(), kWaiters);
  EXPECT_EQ(conn.in_flight(), 0u);
  EXPECT_EQ(conn.lane_bytes_in_flight(), 0u);
}

TEST(AbortRaceTest, AbortRacesChannelReshapeWithoutCorruption) {
  // ConfigureChannels is only honoured before traffic, but a caller racing
  // it against Abort must never corrupt the channel table or deadlock —
  // the config lock serializes reshape against Abort's owned-channel sweep.
  for (int round = 0; round < 32; ++round) {
    SimClock clock;
    CostModel costs;
    FuseConn conn(&clock, &costs);
    std::thread reshaper([&] {
      for (size_t k = 1; k <= 4; ++k) {
        (void)conn.ConfigureChannels(k);
      }
    });
    std::thread aborter([&] { conn.Abort(); });
    std::thread sender([&] {
      (void)conn.SendAndWait(FuseRequest{});
    });
    reshaper.join();
    aborter.join();
    // The sender either lost the race (ENOTCONN) or parked; an aborted
    // connection must resolve it either way.
    sender.join();
    EXPECT_TRUE(conn.aborted());
    EXPECT_EQ(conn.lane_bytes_in_flight(), 0u);
  }
}

// --- Abort vs. in-flight spliced payloads, through the full mount ---

class AbortRaceFsTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    fuse_server_ = std::make_unique<FuseServer>(dev->second, cntrfs_.get(), 4);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", dev->second, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      (void)fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

TEST_F(AbortRaceFsTest, AbortReconcilesInFlightSplicedIo) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.splice_write = true;  // flush WRITE payloads ride the lanes too
  Mount(opts);

  constexpr int kThreads = 4;
  std::atomic<bool> dead{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      kernel::ProcessPtr proc = kernel_->Fork(*kernel_->init(), "io-" + std::to_string(t));
      std::string data(256 * 1024, 'a' + static_cast<char>(t));
      char buf[64 * 1024];
      for (int i = 0; !dead.load(std::memory_order_relaxed) && i < 10000; ++i) {
        std::string path = "/m/tmp/race-" + std::to_string(t) + "-" + std::to_string(i);
        auto fd = kernel_->Open(*proc, path, kernel::kORdWr | kernel::kOCreat, 0644);
        if (!fd.ok()) {
          dead.store(true, std::memory_order_relaxed);
          break;
        }
        // Write + fsync pushes spliced WRITEs; the read pulls a spliced
        // READ payload. Any of these may die mid-lane when Abort lands.
        (void)kernel_->Write(*proc, fd.value(), data.data(), data.size());
        (void)kernel_->Fsync(*proc, fd.value());
        (void)kernel_->Read(*proc, fd.value(), buf, sizeof(buf));
        (void)kernel_->Close(*proc, fd.value());
      }
    });
  }

  // Let the I/O reach a steady state, then kill the transport under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fuse_fs_->conn().Abort();
  for (auto& t : workers) {
    t.join();
  }

  EXPECT_TRUE(fuse_fs_->conn().aborted());
  // The abort reconciliation must have drained every lane: payload bytes
  // parked by requests that died mid-flight do not leak capacity.
  EXPECT_EQ(fuse_fs_->conn().lane_bytes_in_flight(), 0u);
  // And the mount stays a clean EIO surface afterwards.
  kernel::ProcessPtr proc = kernel_->Fork(*kernel_->init(), "after");
  EXPECT_EQ(kernel_->Open(*proc, "/m/tmp/post-abort", kernel::kOWrOnly | kernel::kOCreat, 0644)
                .error(),
            EIO);
}

}  // namespace
}  // namespace cntr::fuse
