// Unit tests for the FUSE layer: the connection queue, protocol round
// trips, abort semantics, forget batching, and mount-option behaviour
// (observed through server-side statistics).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

TEST(FuseConnTest, RoundTripThroughManualServer) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);

  std::thread server([&] {
    auto req = conn.ReadRequest();
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->opcode, FuseOpcode::kGetattr);
    EXPECT_EQ(req->nodeid, 42u);
    FuseReply reply;
    reply.attr.ino = 42;
    conn.WriteReply(req->unique, std::move(reply));
  });

  FuseRequest req;
  req.opcode = FuseOpcode::kGetattr;
  req.nodeid = 42;
  auto reply = conn.SendAndWait(std::move(req));
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->attr.ino, 42u);
}

TEST(FuseConnTest, RoundTripChargesVirtualTime) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  std::thread server([&] {
    auto req = conn.ReadRequest();
    conn.WriteReply(req->unique, FuseReply{});
  });
  uint64_t before = clock.NowNs();
  (void)conn.SendAndWait(FuseRequest{});
  server.join();
  EXPECT_GE(clock.NowNs() - before, costs.fuse_round_trip_ns);
}

TEST(FuseConnTest, ErrorRepliesBecomeStatus) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  std::thread server([&] {
    auto req = conn.ReadRequest();
    conn.WriteReply(req->unique, FuseReply::Error(ENOENT));
  });
  auto reply = conn.SendAndWait(FuseRequest{});
  server.join();
  EXPECT_EQ(reply.error(), ENOENT);
}

TEST(FuseConnTest, AbortWakesWaitersWithEnotconn) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  std::thread aborter([&] {
    (void)conn.ReadRequest();  // take the request, never answer
    conn.Abort();
  });
  auto reply = conn.SendAndWait(FuseRequest{});
  aborter.join();
  EXPECT_EQ(reply.error(), ENOTCONN);
  // Further sends fail immediately.
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
  // Server readers see end-of-stream.
  EXPECT_FALSE(conn.ReadRequest().has_value());
}

TEST(FuseConnTest, NoReplyRequestsDoNotBlock) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  FuseRequest forget;
  forget.opcode = FuseOpcode::kForget;
  conn.SendNoReply(std::move(forget));  // must not deadlock
  auto req = conn.ReadRequest();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->opcode, FuseOpcode::kForget);
  EXPECT_EQ(req->unique, 0u);  // no reply slot
  conn.Abort();
}

TEST(FuseConnTest, ContentionCostGrowsWithReaders) {
  SimClock clock;
  CostModel costs;
  FuseConn conn_one(&clock, &costs);
  FuseConn conn_many(&clock, &costs);
  conn_one.AddReader();
  for (int i = 0; i < 8; ++i) {
    conn_many.AddReader();
  }
  auto measure = [&](FuseConn& conn) {
    std::thread server([&] {
      auto req = conn.ReadRequest();
      conn.WriteReply(req->unique, FuseReply{});
    });
    uint64_t before = clock.NowNs();
    (void)conn.SendAndWait(FuseRequest{});
    server.join();
    return clock.NowNs() - before;
  };
  EXPECT_GT(measure(conn_many), measure(conn_one));
}

// --- FuseFs behaviour through a real CntrFS server ---

class FuseFsTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    fuse_server_ = std::make_unique<FuseServer>(dev->second, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", dev->second, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

TEST_F(FuseFsTest, WritebackDefersServerWrites) {
  Mount(FuseMountOptions::Optimized());
  auto fd = kernel_->Open(*proc_, "/m/tmp/wb", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string data(64 * 1024, 'w');
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
  EXPECT_EQ(cntrfs_->stats().writes, 0u) << "writeback cache must absorb the write";
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  EXPECT_GT(cntrfs_->stats().writes, 0u) << "fsync must flush to the server";
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
}

TEST_F(FuseFsTest, SyncModeWritesThroughImmediately) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.writeback_cache = false;
  Mount(opts);
  auto fd = kernel_->Open(*proc_, "/m/tmp/sync", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), "now", 3).ok());
  EXPECT_GT(cntrfs_->stats().writes, 0u) << "sync mode must hit the server per write";
}

TEST_F(FuseFsTest, KeepCacheServesRereadsWithoutServer) {
  Mount(FuseMountOptions::Optimized());
  // Seed a file directly on the host.
  auto seed = kernel_->Open(*kernel_->init(), "/tmp/warm", kernel::kOWrOnly | kernel::kOCreat,
                            0644);
  ASSERT_TRUE(seed.ok());
  std::string data(16 * 1024, 'k');
  ASSERT_TRUE(kernel_->Write(*kernel_->init(), seed.value(), data.data(), data.size()).ok());
  ASSERT_TRUE(kernel_->Close(*kernel_->init(), seed.value()).ok());

  auto read_once = [&] {
    auto fd = kernel_->Open(*proc_, "/m/tmp/warm", kernel::kORdOnly);
    ASSERT_TRUE(fd.ok());
    char buf[16 * 1024];
    ASSERT_TRUE(kernel_->Read(*proc_, fd.value(), buf, sizeof(buf)).ok());
    ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  };
  read_once();
  uint64_t after_first = cntrfs_->stats().reads;
  read_once();
  EXPECT_EQ(cntrfs_->stats().reads, after_first)
      << "second open must be served from the kernel page cache";
}

TEST_F(FuseFsTest, NoKeepCacheInvalidatesOnOpen) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.keep_cache = false;
  Mount(opts);
  auto seed = kernel_->Open(*kernel_->init(), "/tmp/cold", kernel::kOWrOnly | kernel::kOCreat,
                            0644);
  ASSERT_TRUE(seed.ok());
  std::string data(16 * 1024, 'c');
  ASSERT_TRUE(kernel_->Write(*kernel_->init(), seed.value(), data.data(), data.size()).ok());
  ASSERT_TRUE(kernel_->Close(*kernel_->init(), seed.value()).ok());

  auto read_once = [&] {
    auto fd = kernel_->Open(*proc_, "/m/tmp/cold", kernel::kORdOnly);
    ASSERT_TRUE(fd.ok());
    char buf[16 * 1024];
    ASSERT_TRUE(kernel_->Read(*proc_, fd.value(), buf, sizeof(buf)).ok());
    ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  };
  read_once();
  uint64_t after_first = cntrfs_->stats().reads;
  read_once();
  EXPECT_GT(cntrfs_->stats().reads, after_first)
      << "every open must invalidate and re-fetch without FOPEN_KEEP_CACHE";
}

TEST_F(FuseFsTest, LookupsDeduplicateHardlinksToOneNodeid) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_TRUE(kernel_->Open(*proc_, "/m/tmp/orig", kernel::kOWrOnly | kernel::kOCreat, 0644)
                  .ok());
  ASSERT_TRUE(kernel_->Link(*proc_, "/m/tmp/orig", "/m/tmp/alias").ok());
  kernel_->dcache().Clear();
  auto a = kernel_->Resolve(*proc_, "/m/tmp/orig");
  auto b = kernel_->Resolve(*proc_, "/m/tmp/alias");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->inode.get(), b->inode.get());
}

TEST_F(FuseFsTest, AbortedConnectionFailsOperationsCleanly) {
  Mount(FuseMountOptions::Optimized());
  fuse_fs_->Shutdown();
  auto fd = kernel_->Open(*proc_, "/m/tmp/after-abort", kernel::kOWrOnly | kernel::kOCreat,
                          0644);
  // The transport speaks ENOTCONN, but the filesystem boundary degrades an
  // aborted mount to EIO — the same error a dead disk produces.
  EXPECT_EQ(fd.error(), EIO);
}

TEST_F(FuseFsTest, RepeatedEnoentLookupsServeFromNegativeDentries) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_EQ(kernel_->Stat(*proc_, "/m/tmp/nope").error(), ENOENT);
  uint64_t after_first = cntrfs_->stats().lookups;
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(kernel_->Stat(*proc_, "/m/tmp/nope").error(), ENOENT);
  }
  EXPECT_EQ(cntrfs_->stats().lookups, after_first)
      << "repeated misses within the entry TTL must not round-trip";
  EXPECT_GT(kernel_->dcache().stats().negative_hits, 0u);
}

TEST_F(FuseFsTest, LocalCreateBuriesNegativeDentry) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_EQ(kernel_->Stat(*proc_, "/m/tmp/soon").error(), ENOENT);
  auto fd = kernel_->Open(*proc_, "/m/tmp/soon", kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp/soon").ok())
      << "a local create must overwrite the cached ENOENT immediately";
}

TEST_F(FuseFsTest, OCreatOpensServerSideFileDespiteStaleNegativeDentry) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_EQ(kernel_->Stat(*proc_, "/m/tmp/raced").error(), ENOENT);  // caches negative
  // Created underneath the mount within the negative entry's TTL.
  auto seed = kernel_->Open(*kernel_->init(), "/tmp/raced", kernel::kOWrOnly | kernel::kOCreat,
                            0644);
  ASSERT_TRUE(seed.ok());
  ASSERT_TRUE(kernel_->Write(*kernel_->init(), seed.value(), "body", 4).ok());
  ASSERT_TRUE(kernel_->Close(*kernel_->init(), seed.value()).ok());
  // POSIX: O_CREAT without O_EXCL must open the existing file, not EEXIST.
  auto fd = kernel_->Open(*proc_, "/m/tmp/raced", kernel::kORdWr | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  char buf[8] = {};
  auto n = kernel_->Read(*proc_, fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "body");
  // O_EXCL still reports the (real) existence.
  EXPECT_EQ(kernel_->Open(*proc_, "/m/tmp/raced",
                          kernel::kOWrOnly | kernel::kOCreat | kernel::kOExcl, 0644)
                .error(),
            EEXIST);
}

TEST_F(FuseFsTest, NegativeDentryExpiresSoServerSideCreatesAppear) {
  Mount(FuseMountOptions::Optimized());
  ASSERT_EQ(kernel_->Stat(*proc_, "/m/tmp/later").error(), ENOENT);
  // Created underneath the mount (the server's view), bypassing the kernel
  // dcache hooks: visible only after the negative entry's TTL runs out —
  // exactly Linux's FUSE entry_timeout semantics.
  auto fd = kernel_->Open(*kernel_->init(), "/tmp/later", kernel::kOWrOnly | kernel::kOCreat,
                          0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  kernel_->clock().Advance(2'000'000'000);  // outlive the 1s entry TTL
  EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp/later").ok());
}

TEST_F(FuseFsTest, StatfsForwardsToServer) {
  Mount(FuseMountOptions::Optimized());
  auto statfs = kernel_->Statfs(*proc_, "/m");
  ASSERT_TRUE(statfs.ok());
  EXPECT_EQ(statfs->fs_type, "tmpfs");  // the server's root filesystem
}

}  // namespace
}  // namespace cntr::fuse
