// Submission-ring transport tests: negotiation and fallback, out-of-order
// completion to the right waiters, SQ-full backpressure vs. the admission
// gate, FORGET ordering across a reap boundary, interrupt and deadline
// expiry of ring-resident requests, abort with entries in flight, multi-reap
// batch accounting, paper-config determinism on the wakeup path, splice
// payloads over rings, and the ring fault points degrading cleanly.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

// A pid that routes to channel `want` (pid hashing is sticky, so picking
// pids is picking channels).
kernel::Pid PidOnChannel(const FuseConn& conn, size_t want, kernel::Pid not_before = 1) {
  for (kernel::Pid pid = not_before;; ++pid) {
    if (conn.RouteChannel(pid) == want) {
      return pid;
    }
  }
}

FuseRequest GetattrFrom(kernel::Pid pid) {
  FuseRequest req;
  req.opcode = FuseOpcode::kGetattr;
  req.nodeid = kFuseRootId;
  req.pid = pid;
  return req;
}

FuseRequest ForgetFrom(kernel::Pid pid) {
  FuseRequest req;
  req.opcode = FuseOpcode::kForget;
  req.pid = pid;
  req.forgets.push_back(FuseRequest::Forget{7, 1});
  return req;
}

// --- conn-level: the ring protocol itself ---

TEST(RingTransportTest, ConfigureRingClampsAndIsOneShot) {
  SimClock clock;
  CostModel costs;
  {
    FuseConn conn(&clock, &costs, 2);
    EXPECT_FALSE(conn.ring_enabled());
    // Depth rounds up to a power of two within [kMinRingDepth, kMaxRingDepth].
    EXPECT_EQ(conn.ConfigureRing(10), 16u);
    EXPECT_TRUE(conn.ring_enabled());
    EXPECT_EQ(conn.ring_depth(), 16u);
    // Already enabled: the switch is one-shot, the current depth sticks.
    EXPECT_EQ(conn.ConfigureRing(256), 16u);
    conn.Abort();
  }
  {
    FuseConn conn(&clock, &costs, 1);
    EXPECT_EQ(conn.ConfigureRing(0), 0u) << "depth 0 opts out";
    EXPECT_FALSE(conn.ring_enabled());
    EXPECT_EQ(conn.ConfigureRing(1), kMinRingDepth);
    EXPECT_EQ(conn.ConfigureRing(1 << 20), kMinRingDepth)
        << "second switch refused: the established depth sticks";
    EXPECT_EQ(conn.ring_depth(), kMinRingDepth);
    conn.Abort();
  }
}

TEST(RingTransportTest, OutOfOrderCompletionReachesTheRightWaiters) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);

  constexpr int kClients = 4;
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      kernel::Pid pid = 100 + c;
      auto reply = conn.SendAndWait(GetattrFrom(pid));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      // The server tagged each reply with its request's pid: delivery into
      // the wrong completion slot would surface as a cross-wired tag.
      if (reply->data == std::to_string(pid)) {
        correct.fetch_add(1);
      }
    });
  }
  // Collect all four requests before answering, then reply in reverse
  // submission order: completions land out of order while every waiter is
  // still live.
  std::vector<FuseRequest> pending;
  while (pending.size() < kClients) {
    std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
    ASSERT_FALSE(batch.empty());
    for (FuseRequest& req : batch) {
      pending.push_back(std::move(req));
    }
  }
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    FuseReply reply;
    reply.data = std::to_string(it->pid);
    conn.WriteReply(it->unique, std::move(reply));
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(correct.load(), kClients);
  EXPECT_EQ(conn.stats().replies, static_cast<uint64_t>(kClients));
  conn.Abort();
}

TEST(RingTransportTest, SqFullBackpressureBlocksSubmittersUntilTheServerDrains) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_EQ(conn.ConfigureRing(kMinRingDepth), kMinRingDepth);

  // 3x more concurrent submitters than the ring has slots: the excess must
  // park (bounded waits) and land once the server starts reaping — no
  // errors, no spinning forever, and the overflow is visible in the stats.
  constexpr int kClients = 3 * static_cast<int>(kMinRingDepth);
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto reply = conn.SendAndWait(GetattrFrom(200 + c));
      if (reply.ok()) {
        ok.fetch_add(1);
      }
    });
  }
  // Let the ring actually fill before serving.
  while (conn.channel_queue_depth(0) < kMinRingDepth) {
    std::this_thread::yield();
  }
  std::thread server([&] {
    int served = 0;
    while (served < kClients) {
      std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
      ASSERT_FALSE(batch.empty());
      for (FuseRequest& req : batch) {
        conn.WriteReply(req.unique, FuseReply{});
        ++served;
      }
    }
  });
  for (auto& t : clients) {
    t.join();
  }
  server.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(conn.stats().sq_overflows, 1u)
      << "submitters outnumbered ring slots 3:1; someone must have hit a full ring";
  EXPECT_EQ(conn.stats().admission_waits, 0u);
  conn.Abort();
}

TEST(RingTransportTest, AdmissionGateFiresBeforeTheRingEverFills) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);
  conn.SetMaxBackground(2);  // cap far below the ring depth

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto reply = conn.SendAndWait(GetattrFrom(300 + c));
      if (reply.ok()) {
        ok.fetch_add(1);
      }
    });
  }
  std::thread server([&] {
    int served = 0;
    while (served < kClients) {
      std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
      ASSERT_FALSE(batch.empty());
      for (FuseRequest& req : batch) {
        conn.WriteReply(req.unique, FuseReply{});
        ++served;
      }
    }
  });
  for (auto& t : clients) {
    t.join();
  }
  server.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(conn.stats().admission_waits, 1u) << "the gate must have blocked someone";
  EXPECT_EQ(conn.stats().sq_overflows, 0u)
      << "with in-flight capped at 2 the 64-deep ring can never fill";
  conn.Abort();
}

TEST(RingTransportTest, ForgetStaysOrderedBehindLookupAcrossOneReap) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);

  std::thread client([&] {
    FuseRequest lookup;
    lookup.opcode = FuseOpcode::kLookup;
    lookup.nodeid = kFuseRootId;
    lookup.name = "child";
    lookup.pid = 42;
    auto reply = conn.SendAndWait(std::move(lookup));
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  });
  while (conn.channel_queue_depth(0) == 0) {
    std::this_thread::yield();
  }
  // The FORGET that balances the LOOKUP, same pid: the SQ is FIFO, so one
  // reap must deliver both in submission order.
  conn.SendNoReply(ForgetFrom(42));
  ASSERT_EQ(conn.channel_queue_depth(0), 2u);

  std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
  ASSERT_EQ(batch.size(), 2u) << "one reap drains the whole burst";
  EXPECT_EQ(batch[0].opcode, FuseOpcode::kLookup);
  EXPECT_EQ(batch[1].opcode, FuseOpcode::kForget);
  conn.WriteReply(batch[0].unique, FuseReply{});
  client.join();

  auto stats = conn.stats();
  EXPECT_GE(stats.max_reqs_per_reap, 2u);
  EXPECT_GE(stats.reaped_requests, 2u);
  EXPECT_GE(stats.reaps, 1u);
  conn.Abort();
}

TEST(RingTransportTest, InterruptResolvesARingResidentRequest) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);

  std::atomic<int> eintr{0};
  std::thread client([&] {
    auto reply = conn.SendAndWait(GetattrFrom(77));
    if (reply.error() == EINTR) {
      eintr.fetch_add(1);
    }
  });
  while (conn.channel_queue_depth(0) == 0) {
    std::this_thread::yield();
  }
  // Nobody has reaped it: the SQE is still ring-resident. The killed-client
  // path resolves it without the server's help.
  EXPECT_EQ(conn.InterruptPid(77), 1u);
  client.join();
  EXPECT_EQ(eintr.load(), 1);
  EXPECT_GE(conn.stats().interrupts, 1u);
  // The dead SQE is dropped at reap time, not delivered.
  conn.Abort();
  EXPECT_TRUE(conn.ReadRequestBatch(0).empty());
}

TEST(RingTransportTest, DeadlineExpiresARingResidentRequest) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);
  // Tight virtual deadline, short real grace: the sweeper expires the
  // never-served request even though no server thread exists at all.
  conn.SetRequestDeadline(/*virtual_ns=*/50'000, /*real_grace_ms=*/5);

  auto reply = conn.SendAndWait(GetattrFrom(88));
  EXPECT_EQ(reply.error(), ETIMEDOUT);
  EXPECT_GE(conn.stats().timeouts, 1u);
  conn.Abort();
}

TEST(RingTransportTest, AbortWakesRingWaitersOnAllChannels) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  ASSERT_GT(conn.ConfigureRing(64), 0u);

  std::atomic<int> enotconn{0};
  std::vector<std::thread> clients;
  for (size_t ch = 0; ch < 4; ++ch) {
    kernel::Pid pid = PidOnChannel(conn, ch);
    clients.emplace_back([&, pid] {
      auto reply = conn.SendAndWait(GetattrFrom(pid));
      if (reply.error() == ENOTCONN) {
        enotconn.fetch_add(1);
      }
    });
  }
  for (size_t ch = 0; ch < 4; ++ch) {
    while (conn.channel_queue_depth(ch) == 0) {
      std::this_thread::yield();
    }
  }
  conn.Abort();
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(enotconn.load(), 4);
  // Post-abort: sends fail fast, the rings are drained, readers exit.
  EXPECT_EQ(conn.SendAndWait(GetattrFrom(1)).error(), ENOTCONN);
  EXPECT_TRUE(conn.ReadRequestBatch(0).empty());
  EXPECT_EQ(conn.lane_bytes_in_flight(), 0u);
}

TEST(RingTransportTest, MultiReapDrainsAForgetBurstInOnePass) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_GT(conn.ConfigureRing(64), 0u);

  constexpr size_t kBurst = 16;
  for (size_t i = 0; i < kBurst; ++i) {
    conn.SendNoReply(ForgetFrom(9));
  }
  std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
  EXPECT_EQ(batch.size(), kBurst);
  auto stats = conn.stats();
  EXPECT_GE(stats.max_reqs_per_reap, kBurst);
  EXPECT_GE(stats.reaped_requests, kBurst);
  EXPECT_EQ(conn.stats().forgets, kBurst);
  conn.Abort();
}

// --- mount-level: negotiation, fallback, splice composition, faults ---

class RingMountTest : public ::testing::Test {
 protected:
  void Mount(FuseMountOptions opts) {
    kernel_ = kernel::Kernel::Create();
    RegisterFuseDevice(kernel_.get());
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
    auto dev = OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok());
    conn_ = dev->second;
    fuse_server_ = std::make_unique<FuseServer>(conn_, cntrfs_.get(), 2);
    fuse_server_->Start();
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/m", 0755).ok());
    auto fs = MountFuse(kernel_.get(), *kernel_->init(), "/m", conn_, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fuse_fs_ = std::move(fs).value();
    proc_ = kernel_->Fork(*kernel_->init(), "app");
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  void Remount(FuseMountOptions opts) {
    TearDown();
    fuse_fs_.reset();
    fuse_server_.reset();
    conn_.reset();
    cntrfs_.reset();
    proc_.reset();
    server_proc_.reset();
    kernel_.reset();
    Mount(opts);
  }

  void SeedFile(const std::string& path, const std::string& data) {
    auto fd = kernel_->Open(*kernel_->init(), path,
                            kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
    ASSERT_TRUE(fd.ok());
    size_t off = 0;
    while (off < data.size()) {
      auto n = kernel_->Write(*kernel_->init(), fd.value(), data.data() + off,
                              data.size() - off);
      ASSERT_TRUE(n.ok());
      off += n.value();
    }
    ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  }

  std::string ReadThroughMount(const std::string& path, size_t size) {
    auto fd = kernel_->Open(*proc_, path, kernel::kORdOnly);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string out(size, '\0');
    size_t off = 0;
    while (off < size) {
      auto n = kernel_->Read(*proc_, fd.value(), out.data() + off, size - off);
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || n.value() == 0) {
        break;
      }
      off += n.value();
    }
    out.resize(off);
    EXPECT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
    return out;
  }

  // One deterministic single-client workload; returns the virtual duration.
  uint64_t RunWorkload() {
    uint64_t start = kernel_->clock().NowNs();
    std::string data(256 * 1024, 'r');
    auto fd = kernel_->Open(*proc_, "/m/tmp/det.dat",
                            kernel::kORdWr | kernel::kOCreat | kernel::kOTrunc, 0644);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(kernel_->Write(*proc_, fd.value(), data.data(), data.size()).ok());
    EXPECT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
    char buf[4096];
    EXPECT_TRUE(kernel_->Pread(*proc_, fd.value(), buf, sizeof(buf), 0).ok());
    EXPECT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
    EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp/det.dat").ok());
    return kernel_->clock().NowNs() - start;
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::shared_ptr<FuseConn> conn_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<FuseServer> fuse_server_;
  std::shared_ptr<FuseFs> fuse_fs_;
};

TEST_F(RingMountTest, NegotiationIsOnByDefaultAndOptOutStaysLegacy) {
  Mount(FuseMountOptions::Optimized());
  EXPECT_TRUE(fuse_fs_->ring_enabled());
  EXPECT_TRUE(conn_->ring_enabled());
  EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp").ok());
  EXPECT_GE(conn_->stats().reaped_requests, 1u) << "traffic rode the rings";

  // Mount-side opt-out: the flag is never offered, the conn stays legacy.
  FuseMountOptions off = FuseMountOptions::Optimized();
  off.ring_enabled = false;
  Remount(off);
  EXPECT_FALSE(fuse_fs_->ring_enabled());
  EXPECT_FALSE(conn_->ring_enabled());
  EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp").ok());
  auto stats = conn_->stats();
  EXPECT_EQ(stats.reaps, 0u);
  EXPECT_EQ(stats.doorbells, 0u);
}

TEST_F(RingMountTest, PaperConfigStaysOnWakeupPathBitIdentically) {
  // Paper() pins rings off: the paper-era mount must produce the exact
  // virtual timeline it produced before the ring transport existed — run
  // the same workload on two fresh stacks and require equality.
  Mount(FuseMountOptions::Paper());
  EXPECT_FALSE(fuse_fs_->ring_enabled());
  EXPECT_FALSE(conn_->ring_enabled());
  uint64_t first = RunWorkload();
  auto stats = conn_->stats();
  EXPECT_EQ(stats.reaps, 0u);
  EXPECT_EQ(stats.doorbells, 0u);
  EXPECT_EQ(stats.spin_parks, 0u);

  Remount(FuseMountOptions::Paper());
  uint64_t second = RunWorkload();
  EXPECT_EQ(first, second) << "paper-era wakeup path must stay deterministic";

  // Baseline() opts out the same way.
  Remount(FuseMountOptions::Baseline());
  EXPECT_FALSE(fuse_fs_->ring_enabled());
}

TEST_F(RingMountTest, SplicePayloadsRideTheRingsAndLanesDrain) {
  std::string want(512 * 1024 + 1234, '\0');
  for (size_t i = 0; i < want.size(); ++i) {
    want[i] = static_cast<char>('A' + (i / 7 + i / 4096) % 23);
  }
  Mount(FuseMountOptions::Optimized());
  ASSERT_TRUE(fuse_fs_->ring_enabled());
  ASSERT_TRUE(fuse_fs_->splice_read_enabled());
  SeedFile("/data/ring-splice.dat", want);
  EXPECT_EQ(ReadThroughMount("/m/data/ring-splice.dat", want.size()), want);
  auto stats = conn_->stats();
  EXPECT_GT(stats.spliced_bytes, 0u) << "payload pages rode the lanes";
  EXPECT_GE(stats.reaps, 1u) << "requests rode the rings";
  EXPECT_EQ(conn_->lane_bytes_in_flight(), 0u) << "lanes drained after delivery";
}

TEST_F(RingMountTest, RingFaultPointsDegradeCleanly) {
  FuseMountOptions opts = FuseMountOptions::Optimized();
  opts.request_deadline_ns = 200'000;
  opts.deadline_grace_ms = 20;
  opts.abort_after_timeouts = 2;

  for (const char* point : {"fuse.conn.sq_overflow", "fuse.ring.doorbell_lost",
                            "fuse.ring.reap"}) {
    SCOPED_TRACE(point);
    Remount(opts);
    ASSERT_TRUE(fuse_fs_->ring_enabled());
    fault::FaultSpec spec;
    spec.error = ENOBUFS;
    spec.fail_at = 1;
    spec.one_shot = true;
    kernel_->faults().Arm(point, spec);
    // Ops may see an error (sq_overflow fails the submission) or a stall
    // that self-heals (lost doorbell, poisoned reap pass) — none may hang.
    for (int i = 0; i < 4; ++i) {
      (void)kernel_->Stat(*proc_, "/m/tmp");
    }
    kernel_->faults().DisarmAll();
    EXPECT_EQ(conn_->lane_bytes_in_flight(), 0u);
    // The mount still serves.
    EXPECT_TRUE(kernel_->Stat(*proc_, "/m/tmp").ok());
  }
}

}  // namespace
}  // namespace cntr::fuse
