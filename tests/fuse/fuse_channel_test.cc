// Multi-queue /dev/fuse channel tests: sticky pid routing, FORGET ordering
// behind the caller's lookups, abort with waiters pending across channels,
// idle-worker stealing, delivered-only reply accounting, virtual channel
// occupancy across parallel lanes, and the CNTRFS node-table shards under
// concurrent LOOKUP/FORGET balance.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::fuse {
namespace {

// A pid that routes to channel `want` (pid hashing is sticky, so picking
// pids is picking channels).
kernel::Pid PidOnChannel(const FuseConn& conn, size_t want, kernel::Pid not_before = 1) {
  for (kernel::Pid pid = not_before;; ++pid) {
    if (conn.RouteChannel(pid) == want) {
      return pid;
    }
  }
}

FuseRequest ForgetFrom(kernel::Pid pid) {
  FuseRequest req;
  req.opcode = FuseOpcode::kForget;
  req.pid = pid;
  req.forgets.push_back(FuseRequest::Forget{7, 1});
  return req;
}

TEST(FuseChannelTest, RoutingIsStickyPerPid) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  ASSERT_EQ(conn.num_channels(), 4u);

  kernel::Pid pid = PidOnChannel(conn, 2);
  // Same pid, many requests: all land on one channel.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(conn.RouteChannel(pid), 2u);
    conn.SendNoReply(ForgetFrom(pid));
  }
  EXPECT_EQ(conn.channel_queue_depth(2), 3u);
  EXPECT_EQ(conn.channel_requests(2), 3u);
  for (size_t ch : {0u, 1u, 3u}) {
    EXPECT_EQ(conn.channel_queue_depth(ch), 0u) << "channel " << ch;
  }
  conn.Abort();
}

TEST(FuseChannelTest, ForgetStaysOrderedBehindLookupOnSameChannel) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  kernel::Pid pid = PidOnChannel(conn, 1);

  std::thread client([&] {
    FuseRequest lookup;
    lookup.opcode = FuseOpcode::kLookup;
    lookup.nodeid = kFuseRootId;
    lookup.name = "child";
    lookup.pid = pid;
    auto reply = conn.SendAndWait(std::move(lookup));
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  });
  // Wait for the LOOKUP to sit in the queue, then send the FORGET that
  // balances it from the same pid: FIFO on the sticky channel guarantees the
  // FORGET is dequeued after the LOOKUP (processing may overlap across
  // workers, which the full-balance forget semantics make safe).
  while (conn.channel_queue_depth(1) == 0) {
    std::this_thread::yield();
  }
  conn.SendNoReply(ForgetFrom(pid));
  ASSERT_EQ(conn.channel_queue_depth(1), 2u);

  auto first = conn.ReadRequest(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->opcode, FuseOpcode::kLookup);
  EXPECT_EQ(first->channel, 1u);
  auto second = conn.ReadRequest(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->opcode, FuseOpcode::kForget);
  EXPECT_EQ(second->channel, 1u);

  conn.WriteReply(first->unique, FuseReply{});
  client.join();
  conn.Abort();
}

TEST(FuseChannelTest, AbortWakesPendingWaitersOnAllChannels) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);

  std::atomic<int> enotconn{0};
  std::vector<std::thread> clients;
  for (size_t ch = 0; ch < 4; ++ch) {
    kernel::Pid pid = PidOnChannel(conn, ch);
    clients.emplace_back([&, pid] {
      FuseRequest req;
      req.opcode = FuseOpcode::kGetattr;
      req.pid = pid;
      auto reply = conn.SendAndWait(std::move(req));
      if (reply.error() == ENOTCONN) {
        enotconn.fetch_add(1);
      }
    });
  }
  // All four requests pending (one per channel), nobody serving.
  for (size_t ch = 0; ch < 4; ++ch) {
    while (conn.channel_queue_depth(ch) == 0) {
      std::this_thread::yield();
    }
  }
  conn.Abort();
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(enotconn.load(), 4);
  // Post-abort: sends fail fast, readers drain what is queued then stop.
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
  for (int i = 0; i < 4; ++i) {
    (void)conn.ReadRequest(0);  // the four aborted requests drain
  }
  EXPECT_FALSE(conn.ReadRequest(0).has_value());
}

TEST(FuseChannelTest, IdleWorkerStealsFromHotSiblingChannel) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 4);
  kernel::Pid pid = PidOnChannel(conn, 0);
  for (int i = 0; i < 3; ++i) {
    conn.SendNoReply(ForgetFrom(pid));
  }
  // A worker homed on a different channel drains the hot one.
  for (int i = 0; i < 3; ++i) {
    auto req = conn.ReadRequest(/*home_channel=*/2);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->channel, 0u);
  }
  EXPECT_EQ(conn.channel_queue_depth(0), 0u);
  conn.Abort();
}

TEST(FuseChannelTest, RepliesCountOnlyWhenDelivered) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 2);
  std::thread server([&] {
    auto req = conn.ReadRequest();
    conn.WriteReply(req->unique, FuseReply{});
  });
  ASSERT_TRUE(conn.SendAndWait(FuseRequest{}).ok());
  server.join();
  EXPECT_EQ(conn.stats().replies, 1u);
  // A reply whose waiter is gone (forget, aborted) is not delivered and
  // must not inflate the stat.
  conn.WriteReply((uint64_t{99} << FuseConn::kChannelBits) | 1, FuseReply{});
  EXPECT_EQ(conn.stats().replies, 1u);
  conn.Abort();
}

TEST(FuseChannelTest, ChannelCountClampsAndFreezesUnderTraffic) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  EXPECT_EQ(conn.num_channels(), 1u);
  EXPECT_EQ(conn.ConfigureChannels(0), 1u);
  EXPECT_EQ(conn.ConfigureChannels(FuseConn::kMaxChannels * 2), FuseConn::kMaxChannels);
  EXPECT_EQ(conn.ConfigureChannels(4), 4u);
  // With a reader registered the shape is frozen.
  conn.AddReader(0);
  EXPECT_EQ(conn.ConfigureChannels(8), 4u);
  conn.RemoveReader(0);
  EXPECT_EQ(conn.ConfigureChannels(8), 8u);
  conn.Abort();
}

TEST(FuseChannelTest, ContentionPremiumIsPerChannel) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 2);
  // Channel 0 is crowded (4 home readers), channel 1 has one.
  for (int i = 0; i < 4; ++i) {
    conn.AddReader(0);
  }
  conn.AddReader(1);

  auto measure = [&](kernel::Pid pid) {
    std::thread server([&] {
      auto req = conn.ReadRequest(conn.RouteChannel(pid));
      conn.WriteReply(req->unique, FuseReply{});
    });
    FuseRequest req;
    req.pid = pid;
    uint64_t before = clock.NowNs();
    (void)conn.SendAndWait(std::move(req));
    server.join();
    return clock.NowNs() - before;
  };
  uint64_t crowded = measure(PidOnChannel(conn, 0));
  uint64_t quiet = measure(PidOnChannel(conn, 1));
  EXPECT_EQ(crowded - quiet, 3 * costs.fuse_thread_contention_ns)
      << "premium must scale with the readers of the request's channel only";
  conn.Abort();
}

TEST(FuseChannelTest, ChannelOccupancySerializesParallelLanes) {
  SimClock clock;
  CostModel costs;

  auto run = [&](size_t channels, kernel::Pid pid_a, kernel::Pid pid_b) {
    FuseConn conn(&clock, &costs, channels);
    std::thread server([&] {
      while (auto req = conn.ReadRequest()) {
        conn.WriteReply(req->unique, FuseReply{});
      }
    });
    auto lane_a = std::make_shared<SimClock::Lane>();
    auto lane_b = std::make_shared<SimClock::Lane>();
    {
      SimClock::LaneScope scope(lane_a);
      FuseRequest req;
      req.pid = pid_a;
      EXPECT_TRUE(conn.SendAndWait(std::move(req)).ok());
    }
    {
      SimClock::LaneScope scope(lane_b);
      FuseRequest req;
      req.pid = pid_b;
      EXPECT_TRUE(conn.SendAndWait(std::move(req)).ok());
    }
    conn.Abort();
    server.join();
    return lane_b->local_ns.load();
  };

  // One channel: lane B arrives while the channel is virtually occupied by
  // lane A's request and waits it out — the single-queue plateau.
  FuseConn probe(&clock, &costs, 2);
  kernel::Pid pid_a = PidOnChannel(probe, 0);
  kernel::Pid pid_b = PidOnChannel(probe, 1);
  uint64_t shared_queue = run(1, pid_a, pid_b);
  EXPECT_GE(shared_queue, 2 * costs.fuse_round_trip_ns);
  // Two channels: the pids route to distinct queues; no occupancy wait.
  uint64_t own_queue = run(2, pid_a, pid_b);
  EXPECT_LT(own_queue, 2 * costs.fuse_round_trip_ns);
  probe.Abort();
}

// --- CNTRFS node-table shards under concurrent lookup/forget balance ---

class NodeTableStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok());
    cntrfs_ = std::move(server).value();
  }

  FuseReply Lookup(uint64_t dir, const std::string& name) {
    FuseRequest req;
    req.opcode = FuseOpcode::kLookup;
    req.nodeid = dir;
    req.name = name;
    return cntrfs_->Handle(req);
  }

  void Forget(uint64_t nodeid, uint64_t nlookup) {
    FuseRequest req;
    req.opcode = FuseOpcode::kForget;
    req.forgets.push_back(FuseRequest::Forget{nodeid, nlookup});
    (void)cntrfs_->Handle(req);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
};

TEST_F(NodeTableStressTest, ConcurrentLookupForgetBalanceReturnsToBaseline) {
  constexpr int kThreads = 8;
  constexpr int kFilesPerThread = 24;
  constexpr int kLookupsPerFile = 3;

  // Seed the tree: one directory per thread, kFilesPerThread files each.
  for (int t = 0; t < kThreads; ++t) {
    std::string dir = "/tmp/stress-" + std::to_string(t);
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), dir, 0755).ok());
    for (int f = 0; f < kFilesPerThread; ++f) {
      auto fd = kernel_->Open(*kernel_->init(), dir + "/f" + std::to_string(f),
                              kernel::kOWrOnly | kernel::kOCreat, 0644);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
    }
  }
  ASSERT_EQ(cntrfs_->NodeTableSize(), 0u);

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto tmp_reply = Lookup(kFuseRootId, "tmp");
      if (tmp_reply.error != 0) {
        failed.store(true);
        return;
      }
      auto dir_reply = Lookup(tmp_reply.entry.nodeid, "stress-" + std::to_string(t));
      if (dir_reply.error != 0) {
        failed.store(true);
        return;
      }
      uint64_t dir_node = dir_reply.entry.nodeid;
      for (int f = 0; f < kFilesPerThread; ++f) {
        std::string name = "f" + std::to_string(f);
        uint64_t child = 0;
        for (int l = 0; l < kLookupsPerFile; ++l) {
          auto reply = Lookup(dir_node, name);
          if (reply.error != 0) {
            failed.store(true);
            return;
          }
          child = reply.entry.nodeid;
        }
        Forget(child, kLookupsPerFile);
      }
      Forget(dir_node, 1);
      Forget(tmp_reply.entry.nodeid, 1);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ASSERT_FALSE(failed.load());
  // Every grant balanced by a forget ("tmp" collected one grant per thread
  // and one return per thread): the table is back at baseline.
  EXPECT_EQ(cntrfs_->NodeTableSize(), 0u);
  EXPECT_GT(cntrfs_->node_table_shards(), 1u);
}

TEST_F(NodeTableStressTest, HardlinksStillDeduplicateAcrossShardsByDevIno) {
  auto fd = kernel_->Open(*kernel_->init(), "/tmp/orig", kernel::kOWrOnly | kernel::kOCreat,
                          0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Close(*kernel_->init(), fd.value()).ok());
  ASSERT_TRUE(kernel_->Link(*kernel_->init(), "/tmp/orig", "/tmp/alias").ok());

  auto tmp = Lookup(kFuseRootId, "tmp");
  ASSERT_EQ(tmp.error, 0);
  auto a = Lookup(tmp.entry.nodeid, "orig");
  auto b = Lookup(tmp.entry.nodeid, "alias");
  ASSERT_EQ(a.error, 0);
  ASSERT_EQ(b.error, 0);
  EXPECT_EQ(a.entry.nodeid, b.entry.nodeid)
      << "one (dev, ino) must intern one nodeid regardless of shard layout";
  Forget(a.entry.nodeid, 2);
  Forget(tmp.entry.nodeid, 1);
  EXPECT_EQ(cntrfs_->NodeTableSize(), 0u);
}

}  // namespace
}  // namespace cntr::fuse
