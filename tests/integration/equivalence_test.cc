// Property-based equivalence: random filesystem operation sequences applied
// both natively and through CntrFS must leave identical observable state.
// This is the strongest functional statement about the passthrough server —
// the in-code analogue of running a fuzzer over the mount.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"
#include "src/util/rng.h"

namespace cntr {
namespace {

// One side: a kernel with a working directory, optionally behind CntrFS.
struct Side {
  std::unique_ptr<kernel::Kernel> kernel;
  kernel::ProcessPtr proc;
  kernel::ProcessPtr server_proc;
  std::unique_ptr<core::CntrFsServer> cntrfs;
  std::unique_ptr<fuse::FuseServer> fuse_server;
  std::shared_ptr<fuse::FuseFs> fuse_fs;
  std::string base;

  ~Side() {
    if (fuse_fs != nullptr) {
      fuse_fs->Shutdown();
    }
    if (fuse_server != nullptr) {
      fuse_server->Stop();
    }
  }
};

std::unique_ptr<Side> MakeSide(bool through_cntr) {
  auto side = std::make_unique<Side>();
  side->kernel = kernel::Kernel::Create();
  auto* k = side->kernel.get();
  if (through_cntr) {
    fuse::RegisterFuseDevice(k);
    side->server_proc = k->Fork(*k->init(), "cntrfs");
    EXPECT_TRUE(k->Unshare(*side->server_proc, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(k, side->server_proc, "/");
    EXPECT_TRUE(server.ok());
    side->cntrfs = std::move(server).value();
    auto dev = fuse::OpenFuseDevice(k, *k->init());
    EXPECT_TRUE(dev.ok());
    side->fuse_server = std::make_unique<fuse::FuseServer>(dev->second, side->cntrfs.get(), 2);
    side->fuse_server->Start();
    EXPECT_TRUE(k->Mkdir(*k->init(), "/m", 0755).ok());
    auto fs = fuse::MountFuse(k, *k->init(), "/m", dev->second,
                              fuse::FuseMountOptions::Optimized());
    EXPECT_TRUE(fs.ok());
    side->fuse_fs = std::move(fs).value();
    side->base = "/m/tmp/work";
  } else {
    side->base = "/tmp/work";
  }
  side->proc = k->Fork(*k->init(), "prop");
  EXPECT_TRUE(k->Mkdir(*side->proc, side->base, 0755).ok());
  return side;
}

// Applies one scripted op; the script is identical on both sides because
// the RNG is re-seeded identically.
void ApplyOps(Side& side, uint64_t seed, int steps) {
  Rng rng(seed);
  auto* k = side.kernel.get();
  auto& proc = *side.proc;
  std::vector<std::string> files;
  std::vector<std::string> dirs = {""};
  int counter = 0;
  for (int i = 0; i < steps; ++i) {
    uint64_t roll = rng.Below(100);
    if (roll < 25) {  // create file with content
      std::string dir = dirs[rng.Below(dirs.size())];
      std::string rel = dir + "/f" + std::to_string(counter++);
      std::string content(rng.Range(1, 9000), static_cast<char>('a' + rng.Below(26)));
      auto fd = k->Open(proc, side.base + rel,
                        kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc, 0644);
      if (fd.ok()) {
        (void)k->Write(proc, fd.value(), content.data(), content.size());
        (void)k->Close(proc, fd.value());
        files.push_back(rel);
      }
    } else if (roll < 35) {  // mkdir
      std::string rel = dirs[rng.Below(dirs.size())] + "/d" + std::to_string(counter++);
      if (k->Mkdir(proc, side.base + rel).ok()) {
        dirs.push_back(rel);
      }
    } else if (roll < 50 && !files.empty()) {  // overwrite range
      std::string rel = files[rng.Below(files.size())];
      auto fd = k->Open(proc, side.base + rel, kernel::kORdWr);
      if (fd.ok()) {
        char patch[64];
        std::memset(patch, static_cast<char>('A' + rng.Below(26)), sizeof(patch));
        (void)k->Pwrite(proc, fd.value(), patch, sizeof(patch), rng.Below(8192));
        (void)k->Close(proc, fd.value());
      }
    } else if (roll < 60 && !files.empty()) {  // truncate
      std::string rel = files[rng.Below(files.size())];
      (void)k->Truncate(proc, side.base + rel, rng.Below(4096));
    } else if (roll < 70 && !files.empty()) {  // rename
      std::string from = files[rng.Below(files.size())];
      std::string to = dirs[rng.Below(dirs.size())] + "/r" + std::to_string(counter++);
      if (k->Rename(proc, side.base + from, side.base + to).ok()) {
        std::erase(files, from);
        files.push_back(to);
      }
    } else if (roll < 78 && !files.empty()) {  // unlink
      std::string rel = files[rng.Below(files.size())];
      if (k->Unlink(proc, side.base + rel).ok()) {
        std::erase(files, rel);
      }
    } else if (roll < 86 && !files.empty()) {  // hardlink
      std::string target = files[rng.Below(files.size())];
      std::string rel = dirs[rng.Below(dirs.size())] + "/l" + std::to_string(counter++);
      if (k->Link(proc, side.base + target, side.base + rel).ok()) {
        files.push_back(rel);
      }
    } else if (roll < 92 && !files.empty()) {  // symlink
      std::string target = files[rng.Below(files.size())];
      std::string rel = dirs[rng.Below(dirs.size())] + "/s" + std::to_string(counter++);
      (void)k->Symlink(proc, side.base + target, side.base + rel);
    } else if (!files.empty()) {  // append
      std::string rel = files[rng.Below(files.size())];
      auto fd = k->Open(proc, side.base + rel, kernel::kOWrOnly | kernel::kOAppend);
      if (fd.ok()) {
        (void)k->Write(proc, fd.value(), "+app", 4);
        (void)k->Close(proc, fd.value());
      }
    }
  }
}

// Recursively snapshots (path -> type:size:content-prefix) for comparison.
void Snapshot(Side& side, const std::string& rel, std::map<std::string, std::string>* out) {
  auto* k = side.kernel.get();
  auto& proc = *side.proc;
  std::string full = side.base + rel;
  auto attr = k->Lstat(proc, full);
  if (!attr.ok()) {
    (*out)[rel] = "<lstat: " + std::to_string(attr.error()) + ">";
    return;
  }
  if (kernel::IsLnk(attr->mode)) {
    auto target = k->Readlink(proc, full);
    std::string t = target.ok() ? target.value() : "?";
    // Targets are absolute and embed the side-specific base; strip it so
    // only the logical destination is compared.
    if (t.rfind(side.base, 0) == 0) {
      t = t.substr(side.base.size());
    }
    (*out)[rel] = "link:" + t;
    return;
  }
  if (kernel::IsReg(attr->mode)) {
    std::string content;
    auto fd = k->Open(proc, full, kernel::kORdOnly);
    if (fd.ok()) {
      char buf[4096];
      while (true) {
        auto n = k->Read(proc, fd.value(), buf, sizeof(buf));
        if (!n.ok() || n.value() == 0) {
          break;
        }
        content.append(buf, n.value());
      }
      (void)k->Close(proc, fd.value());
    }
    (*out)[rel] = "file:" + std::to_string(attr->size) + ":" +
                  std::to_string(std::hash<std::string>()(content)) + ":nlink" +
                  std::to_string(attr->nlink);
    return;
  }
  if (kernel::IsDir(attr->mode)) {
    (*out)[rel] = "dir";
    auto fd = k->Open(proc, full, kernel::kORdOnly | kernel::kODirectory);
    if (!fd.ok()) {
      return;
    }
    auto entries = k->Getdents(proc, fd.value());
    (void)k->Close(proc, fd.value());
    if (!entries.ok()) {
      return;
    }
    for (const auto& e : entries.value()) {
      if (e.name != "." && e.name != "..") {
        Snapshot(side, rel + "/" + e.name, out);
      }
    }
  }
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, RandomOpSequenceProducesIdenticalState) {
  auto native = MakeSide(false);
  auto cntr = MakeSide(true);
  ApplyOps(*native, GetParam(), 150);
  ApplyOps(*cntr, GetParam(), 150);

  // Let FUSE attribute caches expire so snapshots observe server truth.
  native->kernel->clock().Advance(2'000'000'000);
  cntr->kernel->clock().Advance(2'000'000'000);

  std::map<std::string, std::string> native_state;
  std::map<std::string, std::string> cntr_state;
  Snapshot(*native, "", &native_state);
  Snapshot(*cntr, "", &cntr_state);
  // Key-by-key comparison so mismatches name the exact path.
  for (const auto& [path, value] : native_state) {
    auto it = cntr_state.find(path);
    if (it == cntr_state.end()) {
      ADD_FAILURE() << "missing on cntr side: " << path << " = " << value;
    } else {
      EXPECT_EQ(value, it->second) << "state differs at " << path;
    }
  }
  for (const auto& [path, value] : cntr_state) {
    if (native_state.count(path) == 0) {
      ADD_FAILURE() << "extra on cntr side: " << path << " = " << value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(11, 23, 37, 41, 53, 67, 79, 97));

}  // namespace
}  // namespace cntr
