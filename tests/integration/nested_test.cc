// Nested container design (paper §7's planned evaluation extension):
// containers inside containers, with CNTR attaching at every depth.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/core/attach.h"

namespace cntr::core {
namespace {

using container::ContainerRuntime;
using container::ContainerSpec;
using container::DockerEngine;
using container::Image;
using container::Registry;

Image AppImage(const std::string& name, const std::string& marker) {
  Image image("acme/" + name, "latest");
  container::Layer layer;
  layer.id = name;
  layer.files.push_back({"/usr/bin/" + name, 1 << 20, 0755,
                         container::FileClass::kAppBinary, ""});
  layer.files.push_back({"/etc/marker", 0, 0644, container::FileClass::kConfig, marker});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/" + name;
  return image;
}

class NestedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<Registry>(&kernel_->clock());
    docker_ = std::make_shared<DockerEngine>(runtime_.get(), registry_.get());
    cntr_ = std::make_unique<Cntr>(kernel_.get());
    cntr_->RegisterEngine(docker_);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Registry> registry_;
  std::shared_ptr<DockerEngine> docker_;
  std::unique_ptr<Cntr> cntr_;
};

TEST_F(NestedTest, NestedPidNamespacesStack) {
  auto outer = docker_->Run("outer", AppImage("outer", "outer\n"));
  ASSERT_TRUE(outer.ok()) << outer.status().ToString();
  ContainerSpec spec;
  spec.name = "inner";
  spec.image = AppImage("inner", "inner\n");
  auto inner = runtime_->StartNested(outer.value(), std::move(spec));
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();

  auto& inner_proc = *inner.value()->init_proc();
  // Three pid-namespace levels: host, outer, inner — pid 1 at each nested
  // level, and the inner pid ns is a child of the outer's.
  ASSERT_EQ(inner_proc.ns_pids.size(), 3u);
  EXPECT_EQ(inner_proc.ns_pids[1], 2);  // second process in outer's ns
  EXPECT_EQ(inner_proc.ns_pids[2], 1);  // init of its own ns
  EXPECT_EQ(inner_proc.pid_ns->parent().get(), outer.value()->init_proc()->pid_ns.get());
  // The nested cgroup hangs under the parent container's group.
  EXPECT_NE(inner_proc.cgroup->Path().find("/docker/"), std::string::npos);
  EXPECT_NE(inner_proc.cgroup->Path().find("/nested/"), std::string::npos);
}

TEST_F(NestedTest, AttachToNestedContainerSeesOnlyItsWorld) {
  auto outer = docker_->Run("outer", AppImage("outer", "outer\n"));
  ASSERT_TRUE(outer.ok());
  ContainerSpec spec;
  spec.name = "inner";
  spec.image = AppImage("inner", "inner\n");
  auto inner = runtime_->StartNested(outer.value(), std::move(spec));
  ASSERT_TRUE(inner.ok());

  auto session = cntr_->AttachPid(inner.value()->init_proc()->global_pid(), AttachOptions{});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // The app view is the inner container's, not the outer's.
  EXPECT_EQ(session.value()->Execute("cat /var/lib/cntr/etc/marker"), "inner\n");
  // /proc shows exactly the inner world: one init.
  std::string ps = session.value()->Execute("ps");
  EXPECT_NE(ps.find("/usr/bin/inner"), std::string::npos) << ps;
  EXPECT_EQ(ps.find("/usr/bin/outer"), std::string::npos) << ps;
  EXPECT_TRUE(session.value()->Detach().ok());
}

TEST_F(NestedTest, AttachToOuterDoesNotSeeInnerFiles) {
  auto outer = docker_->Run("outer", AppImage("outer", "outer\n"));
  ASSERT_TRUE(outer.ok());
  ContainerSpec spec;
  spec.name = "inner";
  spec.image = AppImage("inner", "inner\n");
  ASSERT_TRUE(runtime_->StartNested(outer.value(), std::move(spec)).ok());

  auto session = cntr_->Attach("docker", "outer");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value()->Execute("cat /var/lib/cntr/etc/marker"), "outer\n");
  EXPECT_TRUE(session.value()->Detach().ok());
}

TEST_F(NestedTest, NestedStartRequiresRunningParent) {
  auto outer = docker_->Run("outer", AppImage("outer", "outer\n"));
  ASSERT_TRUE(outer.ok());
  ASSERT_TRUE(runtime_->Stop(outer.value()).ok());
  ContainerSpec spec;
  spec.name = "inner";
  spec.image = AppImage("inner", "inner\n");
  EXPECT_EQ(runtime_->StartNested(outer.value(), std::move(spec)).error(), ESRCH);
}

}  // namespace
}  // namespace cntr::core
