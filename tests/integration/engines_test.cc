// Cross-engine integration: the full attach workflow must behave
// identically for Docker, LXC, rkt and systemd-nspawn (paper: "compatible
// with all container implementations"), plus failure-injection cases.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/core/attach.h"

namespace cntr::core {
namespace {

using container::ContainerEngine;
using container::ContainerRuntime;
using container::DockerEngine;
using container::Image;
using container::LxcEngine;
using container::NspawnEngine;
using container::Registry;
using container::RktEngine;

Image AppImage() {
  Image image("acme/app", "latest");
  container::Layer layer;
  layer.id = "app";
  layer.files.push_back({"/usr/bin/app", 1 << 20, 0755, container::FileClass::kAppBinary, ""});
  layer.files.push_back({"/etc/app.conf", 0, 0644, container::FileClass::kConfig, "x=1\n"});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/app";
  return image;
}

class EngineAttachTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<Registry>(&kernel_->clock());
    cntr_ = std::make_unique<Cntr>(kernel_.get());
    cntr_->RegisterEngine(std::make_shared<DockerEngine>(runtime_.get(), registry_.get()));
    cntr_->RegisterEngine(std::make_shared<LxcEngine>(runtime_.get(), registry_.get()));
    cntr_->RegisterEngine(std::make_shared<RktEngine>(runtime_.get(), registry_.get()));
    cntr_->RegisterEngine(std::make_shared<NspawnEngine>(runtime_.get(), registry_.get()));
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Registry> registry_;
  std::unique_ptr<Cntr> cntr_;
};

TEST_P(EngineAttachTest, FullAttachWorkflow) {
  const std::string engine = GetParam();
  auto* e = cntr_->engine(engine);
  ASSERT_NE(e, nullptr);
  auto c = e->Run("svc", AppImage());
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  auto session = cntr_->Attach(engine, "svc");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
  std::string ps = session.value()->Execute("ps");
  EXPECT_NE(ps.find("/usr/bin/app"), std::string::npos) << ps;
  EXPECT_TRUE(session.value()->Detach().ok());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineAttachTest,
                         ::testing::Values("docker", "lxc", "rkt", "systemd-nspawn"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<Registry>(&kernel_->clock());
    docker_ = std::make_shared<DockerEngine>(runtime_.get(), registry_.get());
    cntr_ = std::make_unique<Cntr>(kernel_.get());
    cntr_->RegisterEngine(docker_);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Registry> registry_;
  std::shared_ptr<DockerEngine> docker_;
  std::unique_ptr<Cntr> cntr_;
};

TEST_F(FailureInjectionTest, UnknownEngineRejected) {
  EXPECT_EQ(cntr_->Attach("podman", "x").error(), EINVAL);
}

TEST_F(FailureInjectionTest, DetachIsIdempotent) {
  auto c = docker_->Run("svc", AppImage());
  ASSERT_TRUE(c.ok());
  auto session = cntr_->Attach("docker", "svc");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session.value()->Detach().ok());
  EXPECT_TRUE(session.value()->Detach().ok());
}

TEST_F(FailureInjectionTest, TwoConcurrentSessionsOnOneContainer) {
  auto c = docker_->Run("svc", AppImage());
  ASSERT_TRUE(c.ok());
  auto a = cntr_->Attach("docker", "svc");
  auto b = cntr_->Attach("docker", "svc");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
  EXPECT_EQ(b.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
  EXPECT_TRUE(a.value()->Detach().ok());
  // Session b keeps working after a detaches (separate connections).
  EXPECT_EQ(b.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
  EXPECT_TRUE(b.value()->Detach().ok());
}

TEST_F(FailureInjectionTest, SessionsOnDifferentContainersAreIsolated) {
  ASSERT_TRUE(docker_->Run("a", AppImage()).ok());
  Image other = AppImage();
  other.layers();  // copy; tweak config through a new layer
  container::Layer overlay;
  overlay.id = "overlay";
  overlay.files.push_back({"/etc/app.conf", 0, 0644, container::FileClass::kConfig, "x=2\n"});
  other.AddLayer(std::move(overlay));
  ASSERT_TRUE(docker_->Run("b", other).ok());

  auto sa = cntr_->Attach("docker", "a");
  auto sb = cntr_->Attach("docker", "b");
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(sa.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
  EXPECT_EQ(sb.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=2\n");
}

TEST_F(FailureInjectionTest, FatContainerMissingFailsCleanly) {
  ASSERT_TRUE(docker_->Run("svc", AppImage()).ok());
  AttachOptions opts;
  opts.fat_container = "no-such-tools";
  auto session = cntr_->Attach("docker", "svc", opts);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.error(), ENOENT);
}

TEST_F(FailureInjectionTest, AttachInheritsContainerLsmProfile) {
  container::ContainerSpec spec;
  spec.lsm.name = "locked-down";
  spec.lsm.deny_write_prefixes = {"/etc"};
  auto c = docker_->Run("svc", AppImage(), spec);
  ASSERT_TRUE(c.ok());
  auto session = cntr_->Attach("docker", "svc");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  // The attach shell runs under the container's profile (paper §3.2.3
  // "drops the capabilities by applying the AppArmor/SELinux profile"):
  // path-based rules apply to the paths the shell uses, so /etc (the tools
  // side) is write-denied while the app's config remains reachable through
  // /var/lib/cntr (AppArmor matches the path as seen by the task).
  EXPECT_EQ(session.value()->attach_proc()->lsm.name, "locked-down");
  std::string denied = session.value()->Execute("write /etc/evil pwned");
  EXPECT_NE(denied.find("Permission denied"), std::string::npos) << denied;
  EXPECT_EQ(session.value()->Execute("cat /var/lib/cntr/etc/app.conf"), "x=1\n");
}

}  // namespace
}  // namespace cntr::core
