// Namespace, mount-surgery, process and procfs tests — the kernel features
// CNTR's attach path depends on.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/procfs.h"

namespace cntr::kernel {
namespace {

class NamespaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = Kernel::Create();
    init_ = kernel_->init();
  }

  void WriteFile(Process& proc, const std::string& path, const std::string& content) {
    auto fd = kernel_->Open(proc, path, kOWrOnly | kOCreat | kOTrunc, 0644);
    ASSERT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
    ASSERT_TRUE(kernel_->Write(proc, fd.value(), content.data(), content.size()).ok());
    ASSERT_TRUE(kernel_->Close(proc, fd.value()).ok());
  }

  std::string ReadAll(Process& proc, const std::string& path) {
    auto fd = kernel_->Open(proc, path, kORdOnly);
    EXPECT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
    if (!fd.ok()) {
      return "";
    }
    std::string out;
    char buf[4096];
    while (true) {
      auto n = kernel_->Read(proc, fd.value(), buf, sizeof(buf));
      EXPECT_TRUE(n.ok());
      if (!n.ok() || n.value() == 0) {
        break;
      }
      out.append(buf, n.value());
    }
    (void)kernel_->Close(proc, fd.value());
    return out;
  }

  std::unique_ptr<Kernel> kernel_;
  ProcessPtr init_;
};

TEST_F(NamespaceTest, ForkInheritsEverything) {
  auto child = kernel_->Fork(*init_, "child");
  EXPECT_EQ(child->mnt_ns, init_->mnt_ns);
  EXPECT_EQ(child->pid_ns, init_->pid_ns);
  EXPECT_EQ(child->uts_ns, init_->uts_ns);
  EXPECT_EQ(child->parent_pid, init_->global_pid());
  EXPECT_NE(child->global_pid(), init_->global_pid());
}

TEST_F(NamespaceTest, UnshareMountNsIsolatesMounts) {
  auto child = kernel_->Fork(*init_, "child");
  ASSERT_TRUE(kernel_->Unshare(*child, kCloneNewNs).ok());
  EXPECT_NE(child->mnt_ns, init_->mnt_ns);

  // A mount in the child namespace is invisible to init.
  auto scratch = MakeTmpFs(kernel_->AllocDevId(), &kernel_->clock(), &kernel_->costs());
  ASSERT_TRUE(kernel_->Mkdir(*child, "/tmp/m").ok());
  ASSERT_TRUE(kernel_->MountFs(*child, scratch, "/tmp/m").ok());
  WriteFile(*child, "/tmp/m/inside", "child data");
  EXPECT_EQ(ReadAll(*child, "/tmp/m/inside"), "child data");
  EXPECT_EQ(kernel_->Stat(*init_, "/tmp/m/inside").error(), ENOENT);
}

TEST_F(NamespaceTest, UnsharePidNsGivesFreshPidOne) {
  auto child = kernel_->Fork(*init_, "container-init");
  ASSERT_TRUE(kernel_->Unshare(*child, kCloneNewPid).ok());
  ASSERT_EQ(child->ns_pids.size(), 2u);
  EXPECT_EQ(child->ns_pids[1], 1);  // pid 1 in the new namespace
  auto grandchild = kernel_->Fork(*child, "worker");
  ASSERT_EQ(grandchild->ns_pids.size(), 2u);
  EXPECT_EQ(grandchild->ns_pids[1], 2);
}

TEST_F(NamespaceTest, SetNsJoinsExistingNamespace) {
  auto a = kernel_->Fork(*init_, "a");
  ASSERT_TRUE(kernel_->Unshare(*a, kCloneNewUts).ok());
  a->uts_ns->set_hostname("container-a");

  auto b = kernel_->Fork(*init_, "b");
  EXPECT_NE(b->uts_ns->hostname(), "container-a");
  ASSERT_TRUE(kernel_->SetNsDirect(*b, a->uts_ns).ok());
  EXPECT_EQ(b->uts_ns->hostname(), "container-a");
}

TEST_F(NamespaceTest, SetNsViaProcfsFd) {
  auto a = kernel_->Fork(*init_, "a");
  ASSERT_TRUE(kernel_->Unshare(*a, kCloneNewUts).ok());
  a->uts_ns->set_hostname("target");

  auto b = kernel_->Fork(*init_, "b");
  std::string ns_path = "/proc/" + std::to_string(a->global_pid()) + "/ns/uts";
  auto fd = kernel_->Open(*b, ns_path, kORdOnly);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(kernel_->SetNs(*b, fd.value()).ok());
  EXPECT_EQ(b->uts_ns->hostname(), "target");
}

TEST_F(NamespaceTest, BindMountExposesSubtree) {
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/src").ok());
  WriteFile(*init_, "/tmp/src/file", "bound");
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/dst").ok());
  ASSERT_TRUE(kernel_->BindMount(*init_, "/tmp/src", "/tmp/dst").ok());
  EXPECT_EQ(ReadAll(*init_, "/tmp/dst/file"), "bound");
  // Writes through the bind hit the same inode.
  WriteFile(*init_, "/tmp/dst/new", "via bind");
  EXPECT_EQ(ReadAll(*init_, "/tmp/src/new"), "via bind");
}

TEST_F(NamespaceTest, FileBindMountOverlaysSingleFile) {
  WriteFile(*init_, "/tmp/real_passwd", "root:x:0:0");
  WriteFile(*init_, "/tmp/shadowed", "original");
  ASSERT_TRUE(kernel_->BindMount(*init_, "/tmp/real_passwd", "/tmp/shadowed").ok());
  EXPECT_EQ(ReadAll(*init_, "/tmp/shadowed"), "root:x:0:0");
  ASSERT_TRUE(kernel_->Umount(*init_, "/tmp/shadowed").ok());
  EXPECT_EQ(ReadAll(*init_, "/tmp/shadowed"), "original");
}

TEST_F(NamespaceTest, MoveMountRelocatesMount) {
  auto scratch = MakeTmpFs(kernel_->AllocDevId(), &kernel_->clock(), &kernel_->costs());
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/old").ok());
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/new").ok());
  ASSERT_TRUE(kernel_->MountFs(*init_, scratch, "/tmp/old").ok());
  WriteFile(*init_, "/tmp/old/marker", "moved");
  ASSERT_TRUE(kernel_->MoveMount(*init_, "/tmp/old", "/tmp/new").ok());
  EXPECT_EQ(ReadAll(*init_, "/tmp/new/marker"), "moved");
  EXPECT_EQ(kernel_->Stat(*init_, "/tmp/old/marker").error(), ENOENT);
}

TEST_F(NamespaceTest, ChrootConfinesPathResolution) {
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/jail").ok());
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/jail/etc").ok());
  WriteFile(*init_, "/tmp/jail/etc/hostname", "jail");
  WriteFile(*init_, "/etc/hostname", "host");

  auto child = kernel_->Fork(*init_, "jailed");
  ASSERT_TRUE(kernel_->Chroot(*child, "/tmp/jail").ok());
  EXPECT_EQ(ReadAll(*child, "/etc/hostname"), "jail");
  // ".." cannot escape the chroot.
  EXPECT_EQ(ReadAll(*child, "/../../etc/hostname"), "jail");
}

TEST_F(NamespaceTest, ChrootRequiresCapability) {
  auto child = kernel_->Fork(*init_, "unpriv");
  child->creds = Credentials::User(1000, 1000);
  EXPECT_EQ(kernel_->Chroot(*child, "/tmp").error(), EPERM);
}

TEST_F(NamespaceTest, MountpointBusyOnRmdir) {
  auto scratch = MakeTmpFs(kernel_->AllocDevId(), &kernel_->clock(), &kernel_->costs());
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/mp").ok());
  ASSERT_TRUE(kernel_->MountFs(*init_, scratch, "/tmp/mp").ok());
  EXPECT_EQ(kernel_->Rmdir(*init_, "/tmp/mp").error(), EBUSY);
}

TEST_F(NamespaceTest, DotDotCrossesMountBoundary) {
  auto scratch = MakeTmpFs(kernel_->AllocDevId(), &kernel_->clock(), &kernel_->costs());
  ASSERT_TRUE(kernel_->Mkdir(*init_, "/tmp/mnt").ok());
  ASSERT_TRUE(kernel_->MountFs(*init_, scratch, "/tmp/mnt").ok());
  WriteFile(*init_, "/tmp/sibling", "outside");
  EXPECT_EQ(ReadAll(*init_, "/tmp/mnt/../sibling"), "outside");
}

TEST_F(NamespaceTest, ProcfsShowsProcessStatus) {
  auto child = kernel_->Fork(*init_, "worker");
  child->creds = Credentials::User(1000, 1000);
  std::string status = ReadAll(*init_, "/proc/" + std::to_string(child->global_pid()) + "/status");
  EXPECT_NE(status.find("Name:\tworker"), std::string::npos);
  EXPECT_NE(status.find("Uid:\t1000"), std::string::npos);
  EXPECT_NE(status.find("CapEff:\t0000000000000000"), std::string::npos);
}

TEST_F(NamespaceTest, ProcfsEnvironUsesNulSeparators) {
  auto child = kernel_->Fork(*init_, "envy");
  child->env["PATH"] = "/usr/bin";
  child->env["HOME"] = "/root";
  std::string environ =
      ReadAll(*init_, "/proc/" + std::to_string(child->global_pid()) + "/environ");
  EXPECT_NE(environ.find(std::string("HOME=/root") + '\0'), std::string::npos);
  EXPECT_NE(environ.find(std::string("PATH=/usr/bin") + '\0'), std::string::npos);
}

TEST_F(NamespaceTest, ProcfsNsLinksExposeNamespaceIds) {
  std::string pid = std::to_string(init_->global_pid());
  auto link = kernel_->Readlink(*init_, "/proc/" + pid + "/ns/mnt");
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(link.value(), init_->mnt_ns->ProcLink());
  EXPECT_EQ(link.value().rfind("mnt:[", 0), 0u);
}

TEST_F(NamespaceTest, ProcfsCgroupShowsPath) {
  auto child = kernel_->Fork(*init_, "grouped");
  auto cg = kernel_->cgroup_root()->FindOrCreateChild("docker")->FindOrCreateChild("abc123");
  ASSERT_TRUE(kernel_->JoinCgroup(*child, cg).ok());
  std::string cgroup = ReadAll(*init_, "/proc/" + std::to_string(child->global_pid()) + "/cgroup");
  EXPECT_EQ(cgroup, "0::/docker/abc123\n");
}

TEST_F(NamespaceTest, ProcfsHidesForeignPidNamespaces) {
  auto container = kernel_->Fork(*init_, "cinit");
  ASSERT_TRUE(kernel_->Unshare(*container, kCloneNewPid | kCloneNewNs).ok());

  // Mount a procfs bound to the container's pid namespace.
  auto proc_fs = MakeProcFsForNs(kernel_->AllocDevId(), kernel_.get(), container->pid_ns);
  ASSERT_TRUE(kernel_->Mkdir(*container, "/tmp/cproc").ok());
  ASSERT_TRUE(kernel_->MountFs(*container, proc_fs, "/tmp/cproc").ok());

  // Through the container procfs, init (pid 1 outside) is invisible, and the
  // container init appears as pid 1.
  auto fd = kernel_->Open(*container, "/tmp/cproc", kORdOnly | kODirectory);
  ASSERT_TRUE(fd.ok());
  auto entries = kernel_->Getdents(*container, fd.value());
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : entries.value()) {
    if (e.name != "." && e.name != "..") {
      names.push_back(e.name);
    }
  }
  EXPECT_EQ(names, std::vector<std::string>{"1"});
  std::string status = ReadAll(*container, "/tmp/cproc/1/status");
  EXPECT_NE(status.find("Name:\tcinit"), std::string::npos);
}

TEST_F(NamespaceTest, UserNamespaceIdMapping) {
  auto child = kernel_->Fork(*init_, "mapped");
  ASSERT_TRUE(kernel_->Unshare(*child, kCloneNewUser).ok());
  child->user_ns->SetUidMap({{0, 100000, 65536}});
  child->user_ns->SetGidMap({{0, 100000, 65536}});
  EXPECT_EQ(child->user_ns->MapUidToHost(0), 100000u);
  EXPECT_EQ(child->user_ns->MapUidToHost(1000), 101000u);
  EXPECT_EQ(child->user_ns->MapUidFromHost(100500), 500u);
  EXPECT_EQ(child->user_ns->MapUidToHost(70000), kOverflowUid);

  std::string uid_map = ReadAll(*init_, "/proc/" + std::to_string(child->global_pid()) + "/uid_map");
  EXPECT_EQ(uid_map, "0 100000 65536\n");
}

TEST_F(NamespaceTest, LsmProfileDeniesSubtrees) {
  WriteFile(*init_, "/etc/secret", "x");
  auto child = kernel_->Fork(*init_, "confined");
  child->lsm.name = "docker-default";
  child->lsm.deny_all_prefixes = {"/etc"};
  EXPECT_EQ(kernel_->Open(*child, "/etc/secret", kORdOnly).error(), EACCES);
  EXPECT_TRUE(kernel_->Open(*child, "/tmp", kORdOnly | kODirectory).ok());
}

TEST_F(NamespaceTest, ExitRemovesFromProcessTable) {
  auto child = kernel_->Fork(*init_, "doomed");
  Pid pid = child->global_pid();
  ASSERT_NE(kernel_->procs().Get(pid), nullptr);
  kernel_->Exit(*child);
  EXPECT_EQ(kernel_->procs().Get(pid), nullptr);
}

}  // namespace
}  // namespace cntr::kernel
