// Unit tests for the process/fd-table layer and the dentry cache — the
// pieces whose behaviour drives CNTR's lookup-cost story.
#include <gtest/gtest.h>

#include "src/kernel/dcache.h"
#include "src/kernel/kernel.h"

namespace cntr::kernel {
namespace {

TEST(FdTableTest, InstallAllocatesLowestFreeFd) {
  FdTable table;
  auto file = std::make_shared<FileDescription>(nullptr, kORdOnly);
  auto a = table.Install(file, false);
  auto b = table.Install(file, false);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 1);
  ASSERT_TRUE(table.Take(a.value()).ok());
  auto c = table.Install(file, false);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), 0) << "freed fd must be reused first";
}

TEST(FdTableTest, EnforcesNofileLimit) {
  FdTable table(/*max_fds=*/4);
  auto file = std::make_shared<FileDescription>(nullptr, kORdOnly);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(table.Install(file, false).ok());
  }
  EXPECT_EQ(table.Install(file, false).error(), EMFILE);
}

TEST(FdTableTest, CopyFromSharesDescriptions) {
  FdTable parent;
  auto file = std::make_shared<FileDescription>(nullptr, kORdOnly);
  auto fd = parent.Install(file, false);
  ASSERT_TRUE(fd.ok());
  FdTable child;
  child.CopyFrom(parent);
  auto got = child.Get(fd.value());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().get(), file.get()) << "fork shares open file descriptions";
}

TEST(ProcessTest, PidVisibilityAcrossNamespaces) {
  auto kernel = Kernel::Create();
  auto outer = kernel->Fork(*kernel->init(), "outer");
  ASSERT_TRUE(kernel->Unshare(*outer, kCloneNewPid).ok());
  auto inner = kernel->Fork(*outer, "inner");

  // From the root namespace both processes are visible with global pids.
  EXPECT_EQ(inner->PidInNs(*kernel->init()->pid_ns), inner->global_pid());
  // From the nested namespace, inner has a small pid and init is invisible.
  EXPECT_EQ(inner->PidInNs(*outer->pid_ns), 2);
  EXPECT_EQ(kernel->init()->PidInNs(*outer->pid_ns), 0);
}

TEST(DentryCacheTest, HitReturnsInsertedChild) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());
  dcache.Insert(root.get(), "etc", etc.value(), UINT64_MAX);
  EXPECT_EQ(dcache.Lookup(root.get(), "etc").get(), etc.value().get());
  EXPECT_EQ(dcache.Lookup(root.get(), "usr"), nullptr);
  EXPECT_GT(dcache.stats().hits, 0u);
}

TEST(DentryCacheTest, FiniteTtlExpires) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());
  dcache.Insert(root.get(), "etc", etc.value(), /*ttl=*/1000);
  EXPECT_NE(dcache.Lookup(root.get(), "etc"), nullptr);
  clock.Advance(2000);
  EXPECT_EQ(dcache.Lookup(root.get(), "etc"), nullptr) << "FUSE-style TTL must expire";
  EXPECT_GT(dcache.stats().expiries, 0u);
}

TEST(DentryCacheTest, NegativeEntriesAnswerEnoentUntilTtl) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs);
  auto root = kernel->root_fs()->root();

  EXPECT_FALSE(dcache.LookupEntry(root.get(), "ghost").has_value()) << "cold: a true miss";
  dcache.InsertNegative(root.get(), "ghost", /*ttl=*/1000);
  auto cached = dcache.LookupEntry(root.get(), "ghost");
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, nullptr) << "negative hit: known absent, no round trip";
  EXPECT_EQ(dcache.stats().negative_hits, 1u);
  clock.Advance(2000);
  EXPECT_FALSE(dcache.LookupEntry(root.get(), "ghost").has_value())
      << "negative entries expire with the entry TTL like positive ones";
}

TEST(DentryCacheTest, PositiveInsertOverwritesNegative) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());

  dcache.InsertNegative(root.get(), "etc", /*ttl=*/1'000'000'000);
  dcache.Insert(root.get(), "etc", etc.value(), UINT64_MAX);
  auto cached = dcache.LookupEntry(root.get(), "etc");
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->get(), etc.value().get()) << "a local create must bury the negative";

  dcache.InsertNegative(root.get(), "gone", /*ttl=*/1'000'000'000);
  dcache.Invalidate(root.get(), "gone");
  EXPECT_FALSE(dcache.LookupEntry(root.get(), "gone").has_value());
}

TEST(DentryCacheTest, InvalidationRemovesEntries) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());
  dcache.Insert(root.get(), "etc", etc.value(), UINT64_MAX);
  dcache.Invalidate(root.get(), "etc");
  EXPECT_EQ(dcache.Lookup(root.get(), "etc"), nullptr);
}

TEST(DentryCacheTest, NativeLookupsAreCachedAcrossCalls) {
  // End to end: the second resolution of the same path must not call into
  // the filesystem again (dcache hit), which is why native lookups are
  // cheap and FUSE's finite TTL is the paper's bottleneck.
  auto kernel = Kernel::Create();
  auto proc = kernel->init();
  ASSERT_TRUE(kernel->Mkdir(*proc, "/tmp/cached").ok());
  ASSERT_TRUE(kernel->Stat(*proc, "/tmp/cached").ok());
  auto before = kernel->dcache().stats();
  ASSERT_TRUE(kernel->Stat(*proc, "/tmp/cached").ok());
  auto after = kernel->dcache().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(DentryCacheTest, ShardedLruEvictsAtMaxEntries) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  // Two lock stripes of 64 entries each; the cache must stay bounded and
  // evict least-recently-used entries per shard once it fills.
  DentryCache dcache(&clock, &costs, /*max_entries=*/128, /*num_shards=*/2);
  ASSERT_EQ(dcache.num_shards(), 2u);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());
  for (int i = 0; i < 300; ++i) {
    dcache.Insert(root.get(), "entry-" + std::to_string(i), etc.value(), UINT64_MAX);
  }
  EXPECT_LE(dcache.size(), 128u) << "cache must stay bounded at max_entries";
  EXPECT_GT(dcache.stats().evictions, 0u);
  // The most recent insert sits at its shard's LRU front and must survive.
  EXPECT_NE(dcache.Lookup(root.get(), "entry-299"), nullptr);
  // The LRU touch on lookup keeps hot entries alive: re-look-up a survivor,
  // then insert more; the touched entry must outlive untouched neighbours.
  InodePtr hot = dcache.Lookup(root.get(), "entry-298");
  if (hot != nullptr) {
    for (int i = 300; i < 330; ++i) {
      dcache.Insert(root.get(), "entry-" + std::to_string(i), etc.value(), UINT64_MAX);
      (void)dcache.Lookup(root.get(), "entry-298");
    }
    EXPECT_NE(dcache.Lookup(root.get(), "entry-298"), nullptr);
  }
}

TEST(DentryCacheTest, InvalidateDirSweepsEveryShard) {
  SimClock clock;
  CostModel costs;
  auto kernel = Kernel::Create();  // outlives the cache: entries pin inodes
  DentryCache dcache(&clock, &costs, /*max_entries=*/1024, /*num_shards=*/4);
  auto root = kernel->root_fs()->root();
  auto etc = root->Lookup("etc");
  ASSERT_TRUE(etc.ok());
  for (int i = 0; i < 64; ++i) {
    dcache.Insert(root.get(), "sweep-" + std::to_string(i), etc.value(), UINT64_MAX);
  }
  dcache.InvalidateDir(root.get());
  EXPECT_EQ(dcache.size(), 0u);
  EXPECT_EQ(dcache.Lookup(root.get(), "sweep-0"), nullptr);
}

TEST(CapSetTest, RoundTripsThroughRaw) {
  CapSet caps{Capability::kChown, Capability::kSysAdmin};
  CapSet restored = CapSet::FromRaw(caps.raw());
  EXPECT_TRUE(restored.Has(Capability::kChown));
  EXPECT_TRUE(restored.Has(Capability::kSysAdmin));
  EXPECT_FALSE(restored.Has(Capability::kSysPtrace));
  restored.Remove(Capability::kSysAdmin);
  EXPECT_FALSE(restored.Has(Capability::kSysAdmin));
  EXPECT_EQ(CapSet::Full().Intersect(CapSet::Empty()).raw(), 0u);
}

TEST(UserNamespaceTest, NestedMapsCompose) {
  UserNamespace outer;
  outer.SetUidMap({{0, 100000, 1000}});
  EXPECT_EQ(outer.MapUidToHost(5), 100005u);
  EXPECT_EQ(outer.MapUidFromHost(100005), 5u);
  EXPECT_EQ(outer.MapUidToHost(5000), kOverflowUid) << "outside every range";
}

}  // namespace
}  // namespace cntr::kernel
