// Unit tests for the shared page-cache pool: LRU eviction, dirty pinning,
// per-owner accounting, and extent coalescing — the machinery behind the
// paper's caching results.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <map>

#include "src/kernel/page_cache.h"
#include "src/util/rng.h"

namespace cntr::kernel {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  SimClock clock_;
  CostModel costs_;
};

TEST_F(PageCacheTest, StoreAndReadBack) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize];
  std::memset(page, 'x', sizeof(page));
  pool.StorePage(this, 0, page, false);
  char out[kPageSize] = {};
  ASSERT_TRUE(pool.ReadPage(this, 0, out));
  EXPECT_EQ(out[100], 'x');
  EXPECT_FALSE(pool.ReadPage(this, 1, out));
}

TEST_F(PageCacheTest, OwnersAreIsolated) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize] = {};
  int owner_a = 0;
  int owner_b = 0;
  pool.StorePage(&owner_a, 0, page, false);
  char out[kPageSize];
  EXPECT_TRUE(pool.ReadPage(&owner_a, 0, out));
  EXPECT_FALSE(pool.ReadPage(&owner_b, 0, out));
}

TEST_F(PageCacheTest, CapacityEvictsCleanLru) {
  PageCachePool pool(&clock_, &costs_, 4 * kPageSize);
  char page[kPageSize] = {};
  for (uint64_t i = 0; i < 8; ++i) {
    pool.StorePage(this, i, page, false);
  }
  EXPECT_LE(pool.ResidentBytes(), 4 * kPageSize);
  char out[kPageSize];
  // The most recent pages survive; the oldest were evicted.
  EXPECT_TRUE(pool.ReadPage(this, 7, out));
  EXPECT_FALSE(pool.ReadPage(this, 0, out));
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST_F(PageCacheTest, DirtyPagesArePinned) {
  PageCachePool pool(&clock_, &costs_, 4 * kPageSize);
  char page[kPageSize] = {};
  for (uint64_t i = 0; i < 3; ++i) {
    pool.StorePage(this, i, page, /*dirty=*/true);
  }
  for (uint64_t i = 3; i < 10; ++i) {
    pool.StorePage(this, i, page, /*dirty=*/false);
  }
  char out[kPageSize];
  // All dirty pages must still be resident despite the capacity pressure.
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.ReadPage(this, i, out)) << i;
  }
  EXPECT_EQ(pool.DirtyBytes(this), 3 * kPageSize);
}

TEST_F(PageCacheTest, MarkCleanAllowsEviction) {
  PageCachePool pool(&clock_, &costs_, 2 * kPageSize);
  char page[kPageSize] = {};
  pool.StorePage(this, 0, page, true);
  EXPECT_EQ(pool.TotalDirtyBytes(), kPageSize);
  pool.MarkClean(this, 0);
  EXPECT_EQ(pool.TotalDirtyBytes(), 0u);
  pool.StorePage(this, 1, page, false);
  pool.StorePage(this, 2, page, false);
  char out[kPageSize];
  EXPECT_FALSE(pool.ReadPage(this, 0, out));  // evicted after cleaning
}

TEST_F(PageCacheTest, UpdatePageReportsDirtyTransition) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize] = {};
  EXPECT_EQ(pool.UpdatePage(this, 0, 0, 4, "abcd", true),
            PageCachePool::UpdateResult::kNotResident);
  pool.StorePage(this, 0, page, false);
  EXPECT_EQ(pool.UpdatePage(this, 0, 0, 4, "abcd", true),
            PageCachePool::UpdateResult::kNewlyDirty);
  EXPECT_EQ(pool.UpdatePage(this, 0, 4, 4, "efgh", true),
            PageCachePool::UpdateResult::kUpdated);
  char out[kPageSize];
  ASSERT_TRUE(pool.ReadPage(this, 0, out));
  EXPECT_EQ(std::string(out, 8), "abcdefgh");
}

TEST_F(PageCacheTest, TruncateDropsTailAndZeroesBoundary) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize];
  std::memset(page, 'z', sizeof(page));
  pool.StorePage(this, 0, page, true);
  pool.StorePage(this, 1, page, true);
  pool.TruncatePages(this, kPageSize / 2);
  char out[kPageSize];
  EXPECT_FALSE(pool.PeekPage(this, 1, out));  // dropped
  ASSERT_TRUE(pool.PeekPage(this, 0, out));
  EXPECT_EQ(out[kPageSize / 2 - 1], 'z');
  EXPECT_EQ(out[kPageSize / 2], '\0');  // zeroed past the new size
}

TEST_F(PageCacheTest, DirtyPagesSortedForWriteback) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize] = {};
  for (uint64_t idx : {7u, 2u, 9u, 3u}) {
    pool.StorePage(this, idx, page, true);
  }
  auto dirty = pool.DirtyPages(this);
  EXPECT_EQ(dirty, (std::vector<uint64_t>{2, 3, 7, 9}));
}

TEST_F(PageCacheTest, DropAllCleanKeepsDirty) {
  PageCachePool pool(&clock_, &costs_, 1 << 20);
  char page[kPageSize] = {};
  pool.StorePage(this, 0, page, true);
  pool.StorePage(this, 1, page, false);
  pool.DropAllClean();
  char out[kPageSize];
  EXPECT_TRUE(pool.PeekPage(this, 0, out));
  EXPECT_FALSE(pool.PeekPage(this, 1, out));
}

TEST(CountExtentsTest, CoalescesRuns) {
  EXPECT_EQ(CountExtents({}), 0u);
  EXPECT_EQ(CountExtents({5}), 1u);
  EXPECT_EQ(CountExtents({1, 2, 3}), 1u);
  EXPECT_EQ(CountExtents({1, 2, 4, 5, 9}), 3u);
}

// Property sweep: after any interleaving of stores and updates, a read
// always returns the most recent content.
class PageCachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCachePropertyTest, LastWriteWins) {
  SimClock clock;
  CostModel costs;
  PageCachePool pool(&clock, &costs, 1 << 22);
  Rng rng(GetParam());
  // Shadow model: expected content per page.
  std::map<uint64_t, std::array<char, kPageSize>> shadow;
  int owner = 0;
  for (int step = 0; step < 500; ++step) {
    uint64_t idx = rng.Below(16);
    char fill = static_cast<char>('a' + rng.Below(26));
    if (rng.Chance(1, 2) || shadow.count(idx) == 0) {
      std::array<char, kPageSize> page;
      page.fill(fill);
      pool.StorePage(&owner, idx, page.data(), rng.Chance(1, 3));
      shadow[idx] = page;
    } else {
      uint32_t off = static_cast<uint32_t>(rng.Below(kPageSize - 16));
      char patch[16];
      std::memset(patch, fill, sizeof(patch));
      if (pool.UpdatePage(&owner, idx, off, 16, patch, true) !=
          PageCachePool::UpdateResult::kNotResident) {
        std::memcpy(shadow[idx].data() + off, patch, 16);
      }
    }
  }
  for (const auto& [idx, expected] : shadow) {
    char out[kPageSize];
    if (pool.PeekPage(&owner, idx, out)) {
      EXPECT_EQ(std::memcmp(out, expected.data(), kPageSize), 0) << "page " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCachePropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cntr::kernel
