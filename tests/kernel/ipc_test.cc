// Tests for the kernel's IPC data plane: pipes, Unix sockets, epoll and
// splice — the substrate under CNTR's pty and socket proxy.
#include <gtest/gtest.h>

#include <thread>

#include "src/kernel/kernel.h"

namespace cntr::kernel {
namespace {

class IpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = Kernel::Create();
    proc_ = kernel_->Fork(*kernel_->init(), "ipc");
  }

  std::unique_ptr<Kernel> kernel_;
  ProcessPtr proc_;
};

TEST_F(IpcTest, PipeRoundTrip) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  ASSERT_TRUE(kernel_->Write(*proc_, wfd, "through the pipe", 16).ok());
  char buf[32];
  auto n = kernel_->Read(*proc_, rfd, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "through the pipe");
}

TEST_F(IpcTest, PipeEofAfterWriterCloses) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  ASSERT_TRUE(kernel_->Write(*proc_, wfd, "last", 4).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, wfd).ok());
  char buf[8];
  auto n = kernel_->Read(*proc_, rfd, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 4u);
  n = kernel_->Read(*proc_, rfd, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u) << "EOF after the writer closed";
}

TEST_F(IpcTest, PipeWriteToClosedReaderFailsEpipe) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  ASSERT_TRUE(kernel_->Close(*proc_, rfd).ok());
  EXPECT_EQ(kernel_->Write(*proc_, wfd, "x", 1).error(), EPIPE);
}

TEST_F(IpcTest, PipeBlockingReadWokenByWriter) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(kernel_->Write(*proc_, wfd, "wake", 4).ok());
  });
  char buf[8];
  auto n = kernel_->Read(*proc_, rfd, buf, sizeof(buf));  // blocks until data
  writer.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "wake");
}

TEST_F(IpcTest, UnixSocketListenConnectAccept) {
  auto listen = kernel_->SocketListen(*proc_, "/tmp/svc.sock");
  ASSERT_TRUE(listen.ok());
  auto attr = kernel_->Stat(*proc_, "/tmp/svc.sock");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(IsSock(attr->mode));

  auto client = kernel_->SocketConnect(*proc_, "/tmp/svc.sock");
  ASSERT_TRUE(client.ok());
  auto server = kernel_->SocketAccept(*proc_, listen.value());
  ASSERT_TRUE(server.ok());

  ASSERT_TRUE(kernel_->Write(*proc_, client.value(), "ping", 4).ok());
  char buf[8];
  auto n = kernel_->Read(*proc_, server.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "ping");
  ASSERT_TRUE(kernel_->Write(*proc_, server.value(), "pong", 4).ok());
  n = kernel_->Read(*proc_, client.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "pong");
}

TEST_F(IpcTest, ConnectWithoutListenerFailsEconnrefused) {
  EXPECT_EQ(kernel_->SocketConnect(*proc_, "/tmp/nobody").error(), ENOENT);
  ASSERT_TRUE(kernel_->Open(*proc_, "/tmp/notsock", kOWrOnly | kOCreat, 0644).ok());
  EXPECT_EQ(kernel_->SocketConnect(*proc_, "/tmp/notsock").error(), ECONNREFUSED);
}

TEST_F(IpcTest, AbstractSocketsArePerNetNamespace) {
  auto listen = kernel_->SocketListenAbstract(*proc_, "x11-display");
  ASSERT_TRUE(listen.ok());
  EXPECT_TRUE(kernel_->SocketConnectAbstract(*proc_, "x11-display").ok());

  // A process in a fresh network namespace cannot see the abstract name.
  auto isolated = kernel_->Fork(*proc_, "isolated");
  ASSERT_TRUE(kernel_->Unshare(*isolated, kCloneNewNet).ok());
  EXPECT_EQ(kernel_->SocketConnectAbstract(*isolated, "x11-display").error(), ECONNREFUSED);
}

TEST_F(IpcTest, SocketPairBidirectional) {
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, pair->first, "ab", 2).ok());
  char buf[4];
  auto n = kernel_->Read(*proc_, pair->second, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "ab");
}

TEST_F(IpcTest, EpollReportsReadiness) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  auto epfd = kernel_->EpollCreate(*proc_);
  ASSERT_TRUE(epfd.ok());
  ASSERT_TRUE(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlAdd, rfd, kPollIn, 7).ok());

  // Nothing readable yet: timeout path.
  auto events = kernel_->EpollWait(*proc_, epfd.value(), 4, 0);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());

  ASSERT_TRUE(kernel_->Write(*proc_, wfd, "x", 1).ok());
  events = kernel_->EpollWait(*proc_, epfd.value(), 4, 100);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->at(0).data, 7u);
  EXPECT_TRUE(events->at(0).events & kPollIn);
}

TEST_F(IpcTest, EpollWakesBlockedWaiter) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto [rfd, wfd] = pipe.value();
  auto epfd = kernel_->EpollCreate(*proc_);
  ASSERT_TRUE(epfd.ok());
  ASSERT_TRUE(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlAdd, rfd, kPollIn, 1).ok());
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(kernel_->Write(*proc_, wfd, "x", 1).ok());
  });
  auto events = kernel_->EpollWait(*proc_, epfd.value(), 4, -1);
  writer.join();
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 1u);
}

TEST_F(IpcTest, EpollCtlModAndDel) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto epfd = kernel_->EpollCreate(*proc_);
  ASSERT_TRUE(epfd.ok());
  ASSERT_TRUE(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlAdd, pipe->first, kPollIn, 1).ok());
  EXPECT_EQ(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlAdd, pipe->first, kPollIn, 1)
                .error(),
            EEXIST);
  ASSERT_TRUE(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlMod, pipe->first, kPollIn, 2).ok());
  ASSERT_TRUE(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlDel, pipe->first, 0, 0).ok());
  EXPECT_EQ(kernel_->EpollCtl(*proc_, epfd.value(), kEpollCtlDel, pipe->first, 0, 0).error(),
            ENOENT);
}

TEST_F(IpcTest, SpliceFileToPipeToFile) {
  // The socket proxy's relay shape: source -> pipe -> sink.
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/spl").ok());
  auto src = kernel_->Open(*proc_, "/tmp/spl/src", kOWrOnly | kOCreat, 0644);
  ASSERT_TRUE(src.ok());
  std::string payload(10000, 's');
  ASSERT_TRUE(kernel_->Write(*proc_, src.value(), payload.data(), payload.size()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, src.value()).ok());

  auto in = kernel_->Open(*proc_, "/tmp/spl/src", kORdOnly);
  auto out = kernel_->Open(*proc_, "/tmp/spl/dst", kOWrOnly | kOCreat, 0644);
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(in.ok() && out.ok() && pipe.ok());
  size_t moved_total = 0;
  while (true) {
    auto moved = kernel_->Splice(*proc_, in.value(), pipe->second, 4096);
    ASSERT_TRUE(moved.ok());
    if (moved.value() == 0) {
      break;
    }
    auto drained = kernel_->Splice(*proc_, pipe->first, out.value(), moved.value());
    ASSERT_TRUE(drained.ok());
    moved_total += drained.value();
  }
  EXPECT_EQ(moved_total, payload.size());
  auto dst_attr = kernel_->Stat(*proc_, "/tmp/spl/dst");
  ASSERT_TRUE(dst_attr.ok());
  EXPECT_EQ(dst_attr->size, payload.size());
}

TEST_F(IpcTest, SpliceRequiresAPipe) {
  auto a = kernel_->Open(*proc_, "/tmp/a", kOWrOnly | kOCreat, 0644);
  auto b = kernel_->Open(*proc_, "/tmp/b", kOWrOnly | kOCreat, 0644);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(kernel_->Splice(*proc_, a.value(), b.value(), 100).error(), EINVAL);
}

TEST_F(IpcTest, SpliceChargesLessThanCopy) {
  // The zero-copy claim, as virtual time: splicing N pages must cost less
  // than the copy-rate for the same payload.
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  auto listen = kernel_->SocketListen(*proc_, "/tmp/z.sock");
  ASSERT_TRUE(listen.ok());
  auto client = kernel_->SocketConnect(*proc_, "/tmp/z.sock");
  auto server = kernel_->SocketAccept(*proc_, listen.value());
  ASSERT_TRUE(client.ok() && server.ok());
  std::string payload(16 * 4096, 'z');
  ASSERT_TRUE(kernel_->Write(*proc_, client.value(), payload.data(), 65536).ok());
  uint64_t before = kernel_->clock().NowNs();
  ASSERT_TRUE(kernel_->Splice(*proc_, server.value(), pipe->second, 65536).ok());
  uint64_t splice_cost = kernel_->clock().NowNs() - before;
  EXPECT_LT(splice_cost, 16 * kernel_->costs().copy_page_ns + kernel_->costs().syscall_entry_ns +
                             16 * kernel_->costs().splice_page_ns);
}

// --- shutdown(2) half-close ---

TEST_F(IpcTest, ShutdownWrGivesPeerEofAndSelfEpipe) {
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = pair.value();
  ASSERT_TRUE(kernel_->Write(*proc_, a, "last words", 10).ok());
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, a, kShutWr).ok());
  EXPECT_EQ(kernel_->Write(*proc_, a, "x", 1).error(), EPIPE);
  char buf[32];
  auto n = kernel_->Read(*proc_, b, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "last words") << "data before SHUT_WR still arrives";
  n = kernel_->Read(*proc_, b, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u) << "EOF after the half-close";
  // The other direction stays open: b -> a still works.
  ASSERT_TRUE(kernel_->Write(*proc_, b, "reply", 5).ok());
  n = kernel_->Read(*proc_, a, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "reply");
  // Idempotent; bad arguments rejected.
  EXPECT_TRUE(kernel_->SocketShutdown(*proc_, a, kShutWr).ok());
  EXPECT_EQ(kernel_->SocketShutdown(*proc_, a, 7).error(), EINVAL);
}

TEST_F(IpcTest, ShutdownRdDiscardsAndBreaksPeerWrites) {
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = pair.value();
  ASSERT_TRUE(kernel_->Write(*proc_, b, "pending", 7).ok());
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, a, kShutRd).ok());
  char buf[16];
  auto n = kernel_->Read(*proc_, a, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u) << "SHUT_RD reads EOF, pending data discarded";
  EXPECT_EQ(kernel_->Write(*proc_, b, "more", 4).error(), EPIPE);
}

TEST_F(IpcTest, ShutdownOnNonSocketFailsEnotsock) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  EXPECT_EQ(kernel_->SocketShutdown(*proc_, pipe->first, kShutWr).error(), ENOTSOCK);
}

TEST_F(IpcTest, BrokenSendSideReportsWritableEvenWhenFull) {
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = pair.value();
  // Fill a's send ring completely: no POLLOUT.
  auto afile = kernel_->GetFile(*proc_, a);
  ASSERT_TRUE(afile.ok());
  afile.value()->set_flags(afile.value()->flags() | kONonblock);
  std::vector<char> chunk(65536, 'f');
  while (kernel_->Write(*proc_, a, chunk.data(), chunk.size()).ok()) {
  }
  EXPECT_FALSE(afile.value()->PollEvents() & kPollOut);
  // Peer stops reading: a writer parked on POLLOUT must wake (and collect
  // EPIPE on write) instead of hanging on a ring that will never drain.
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, b, kShutRd).ok());
  EXPECT_TRUE(afile.value()->PollEvents() & kPollOut);
  EXPECT_EQ(kernel_->Write(*proc_, a, "x", 1).error(), EPIPE);
}

TEST_F(IpcTest, HalfClosedPeerReportsRdHupNotHup) {
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = pair.value();
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, a, kShutWr).ok());
  auto file = kernel_->GetFile(*proc_, b);
  ASSERT_TRUE(file.ok());
  uint32_t ev = file.value()->PollEvents();
  EXPECT_TRUE(ev & kPollRdHup);
  EXPECT_TRUE(ev & kPollIn) << "EOF is readable";
  EXPECT_FALSE(ev & kPollHup) << "a half-open connection is not hung up";
  // Full close of the peer: now the connection is really gone.
  ASSERT_TRUE(kernel_->Close(*proc_, a).ok());
  EXPECT_TRUE(file.value()->PollEvents() & kPollHup);
}

// --- splice over socket endpoints (the proxy data path) ---

TEST_F(IpcTest, SpliceSocketToPipeMovesSegments) {
  auto pair = kernel_->SocketPair(*proc_);
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pair.ok() && pipe.ok());
  auto [a, b] = pair.value();
  std::string payload(2 * 4096 + 7, 'q');
  ASSERT_TRUE(kernel_->Write(*proc_, a, payload.data(), payload.size()).ok());
  auto before = kernel_->splice_engine().stats();
  auto moved = kernel_->Splice(*proc_, b, pipe->second, payload.size());
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(moved.value(), payload.size());
  auto after = kernel_->splice_engine().stats();
  EXPECT_GT(after.spliced_pages, before.spliced_pages) << "segments moved by reference";
  EXPECT_EQ(after.copied_pages, before.copied_pages) << "no byte-copy branch on this path";
  std::string got(payload.size(), '\0');
  auto n = kernel_->Read(*proc_, pipe->first, got.data(), got.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), payload.size());
  EXPECT_EQ(got, payload);
}

TEST_F(IpcTest, SplicePipeToSocketAndSocketToSocket) {
  auto pair1 = kernel_->SocketPair(*proc_);
  auto pair2 = kernel_->SocketPair(*proc_);
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pair1.ok() && pair2.ok() && pipe.ok());
  std::string payload(4096 * 3, 'w');
  ASSERT_TRUE(kernel_->Write(*proc_, pipe->second, payload.data(), payload.size()).ok());
  // pipe -> socket 1, then socket 1 -> socket 2 entirely by reference.
  auto hop1 = kernel_->Splice(*proc_, pipe->first, pair1->first, payload.size());
  ASSERT_TRUE(hop1.ok());
  EXPECT_EQ(hop1.value(), payload.size());
  auto hop2 = kernel_->Splice(*proc_, pair1->second, pair2->first, payload.size());
  ASSERT_TRUE(hop2.ok());
  EXPECT_EQ(hop2.value(), payload.size());
  std::string got(payload.size(), '\0');
  auto n = kernel_->Read(*proc_, pair2->second, got.data(), got.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(got, payload);
}

TEST_F(IpcTest, SpliceRespectsSocketShutdown) {
  auto pair = kernel_->SocketPair(*proc_);
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pair.ok() && pipe.ok());
  auto [a, b] = pair.value();
  ASSERT_TRUE(kernel_->Write(*proc_, a, "tail", 4).ok());
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, b, kShutRd).ok());
  auto moved = kernel_->Splice(*proc_, b, pipe->second, 64);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 0u) << "SHUT_RD source splices as EOF";
  ASSERT_TRUE(kernel_->Write(*proc_, pipe->second, "x", 1).ok());
  ASSERT_TRUE(kernel_->SocketShutdown(*proc_, a, kShutWr).ok());
  EXPECT_EQ(kernel_->Splice(*proc_, pipe->first, a, 64).error(), EPIPE);
}

TEST_F(IpcTest, SocketSegmentHooksMoveRefsAndHonorShutdown) {
  // The file-level segment surface (what Kernel::Splice resolves to): pops
  // are receive-ring references, pushes land in the send ring, and both
  // honor this end's shutdown state.
  auto pair = kernel_->SocketPair(*proc_);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = pair.value();
  auto afile = kernel_->GetFile(*proc_, a);
  auto bfile = kernel_->GetFile(*proc_, b);
  ASSERT_TRUE(afile.ok() && bfile.ok());
  auto* asock = dynamic_cast<ConnectedSocketFile*>(afile.value().get());
  auto* bsock = dynamic_cast<ConnectedSocketFile*>(bfile.value().get());
  ASSERT_NE(asock, nullptr);
  ASSERT_NE(bsock, nullptr);

  ASSERT_TRUE(kernel_->Write(*proc_, a, "segments", 8).ok());
  auto popped = bsock->PopSegments(64, /*nonblock=*/true);
  ASSERT_TRUE(popped.ok());
  ASSERT_EQ(popped.value().size(), 1u);
  EXPECT_EQ(std::string(popped.value()[0].data(), popped.value()[0].size()), "segments");

  // Push the same segments onward by reference: b -> a direction.
  auto pushed = bsock->PushSegments(std::move(popped).value(), /*nonblock=*/true);
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(pushed.value(), 8u);
  char buf[16];
  auto n = kernel_->Read(*proc_, a, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "segments");

  // Shutdown states surface exactly like the byte API (pending data is
  // discarded by SHUT_RD, so queue some first).
  ASSERT_TRUE(kernel_->Write(*proc_, a, "x", 1).ok());
  ASSERT_TRUE(bsock->Shutdown(kShutRdWr).ok());
  auto eof = bsock->PopSegments(64, true);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(eof.value().empty()) << "SHUT_RD pops EOF";
  EXPECT_EQ(bsock->PushSegments({}, true).error(), EPIPE) << "SHUT_WR pushes EPIPE";
}

TEST_F(IpcTest, SpliceWithinOnePipeIsRejected) {
  auto pipe = kernel_->Pipe(*proc_);
  ASSERT_TRUE(pipe.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, pipe->second, "loop", 4).ok());
  EXPECT_EQ(kernel_->Splice(*proc_, pipe->first, pipe->second, 4).error(), EINVAL);
}

}  // namespace
}  // namespace cntr::kernel
