// Unit tests for the per-open-file readahead ramp (kernel/readahead.h):
// sequential streams double the miss-fill window up to the ceiling, random
// access collapses it to a page or two, a re-seek into a new sequential run
// ramps back up, and every returned fill is aligned to the window grid so
// steady-state requests end on window boundaries.
#include <gtest/gtest.h>

#include "src/kernel/readahead.h"

namespace cntr::kernel {
namespace {

TEST(FileReadaheadTest, SequentialStreamDoublesUpToCeiling) {
  FileReadahead ra;
  const uint32_t ceiling = 256;
  // Miss at the start of the file, then exactly where each fill ended. The
  // grid alignment makes the first doubled window fill only up to its own
  // boundary (8, then 16-8=8, 32-16=16, ...), after which runs double
  // cleanly until the ceiling pins them.
  uint64_t page = 0;
  const uint32_t want_runs[] = {8, 8, 16, 32, 64, 128, 256, 256, 256};
  const uint32_t want_windows[] = {8, 16, 32, 64, 128, 256, 256, 256, 256};
  for (size_t i = 0; i < std::size(want_runs); ++i) {
    uint32_t run = ra.OnMiss(page, ceiling);
    EXPECT_EQ(run, want_runs[i]) << "miss " << i << " at page " << page;
    EXPECT_EQ(ra.window_pages(), want_windows[i]) << "miss " << i;
    page += run;
  }
  // Steady state: window-aligned full-ceiling fills.
  EXPECT_EQ(page % ceiling, 0u);
  EXPECT_EQ(ra.OnMiss(page, ceiling), ceiling);
}

TEST(FileReadaheadTest, CeilingCapsTheVeryFirstWindow) {
  FileReadahead ra;
  EXPECT_EQ(ra.OnMiss(0, 4), 4u);  // init window is 8, ceiling is tighter
  EXPECT_EQ(ra.OnMiss(4, 4), 4u);
}

TEST(FileReadaheadTest, RandomAccessCollapsesToMinWindow) {
  FileReadahead ra;
  // Ramp a sequential stream first.
  uint64_t page = 0;
  for (int i = 0; i < 6; ++i) {
    page += ra.OnMiss(page, 256);
  }
  EXPECT_GT(ra.window_pages(), FileReadahead::kMinWindowPages);
  // A miss anywhere else is random: the window collapses.
  EXPECT_LE(ra.OnMiss(10'000, 256), FileReadahead::kMinWindowPages);
  EXPECT_EQ(ra.window_pages(), FileReadahead::kMinWindowPages);
  EXPECT_LE(ra.OnMiss(5'000, 256), FileReadahead::kMinWindowPages);
  EXPECT_EQ(ra.window_pages(), FileReadahead::kMinWindowPages);
}

TEST(FileReadaheadTest, FirstAccessMidFileIsRandom) {
  FileReadahead ra;
  // Only an access at page 0 counts as a fresh sequential start.
  EXPECT_LE(ra.OnMiss(123, 256), FileReadahead::kMinWindowPages);
  EXPECT_EQ(ra.window_pages(), FileReadahead::kMinWindowPages);
}

TEST(FileReadaheadTest, ReseekCollapsesThenRampsAgain) {
  FileReadahead ra;
  uint64_t page = 0;
  for (int i = 0; i < 7; ++i) {
    page += ra.OnMiss(page, 256);
  }
  EXPECT_GE(ra.window_pages(), 64u);
  // Seek to a new region: collapse...
  uint64_t seek = 50'000;
  uint32_t run = ra.OnMiss(seek, 256);
  EXPECT_LE(run, FileReadahead::kMinWindowPages);
  EXPECT_EQ(ra.window_pages(), FileReadahead::kMinWindowPages);
  // ...then the new run is sequential from there and ramps back up from the
  // initial window.
  seek += run;
  run = ra.OnMiss(seek, 256);
  EXPECT_EQ(ra.window_pages(), FileReadahead::kInitWindowPages);
  seek += run;
  run = ra.OnMiss(seek, 256);
  EXPECT_EQ(ra.window_pages(), 2 * FileReadahead::kInitWindowPages);
}

TEST(FileReadaheadTest, AsyncMarkTracksFillEnd) {
  FileReadahead ra;
  uint32_t run = ra.OnMiss(0, 256);
  EXPECT_EQ(ra.async_mark(), run);
  uint32_t run2 = ra.OnMiss(run, 256);
  EXPECT_EQ(ra.async_mark(), run + run2);
}

TEST(FileReadaheadTest, FillsEndOnWindowBoundaries) {
  FileReadahead ra;
  uint64_t page = 0;
  for (int i = 0; i < 12; ++i) {
    uint32_t run = ra.OnMiss(page, 64);
    page += run;
    EXPECT_EQ(page % ra.window_pages(), 0u)
        << "every fill must end on the current window grid";
  }
}

TEST(FileReadaheadTest, CeilingOfZeroStillReturnsOnePage) {
  FileReadahead ra;
  EXPECT_EQ(ra.OnMiss(0, 0), 1u);
}

}  // namespace
}  // namespace cntr::kernel
