// VFS-level tests: open/read/write/seek, directories, links, permissions,
// xattrs, and stat coherence — all against the boot tmpfs and the /data
// ExtFs of a freshly created kernel.
#include <gtest/gtest.h>

#include <string>

#include "src/kernel/kernel.h"

namespace cntr::kernel {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = Kernel::Create();
    proc_ = kernel_->init();
  }

  std::string ReadAll(const std::string& path) {
    auto fd = kernel_->Open(*proc_, path, kORdOnly);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    std::string out;
    char buf[4096];
    while (true) {
      auto n = kernel_->Read(*proc_, fd.value(), buf, sizeof(buf));
      EXPECT_TRUE(n.ok()) << n.status().ToString();
      if (!n.ok() || n.value() == 0) {
        break;
      }
      out.append(buf, n.value());
    }
    EXPECT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
    return out;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    auto fd = kernel_->Open(*proc_, path, kOWrOnly | kOCreat | kOTrunc, 0644);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto n = kernel_->Write(*proc_, fd.value(), content.data(), content.size());
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(n.value(), content.size());
    ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  }

  std::unique_ptr<Kernel> kernel_;
  ProcessPtr proc_;
};

TEST_F(VfsTest, BootCreatesStandardHierarchy) {
  for (const char* dir : {"/proc", "/dev", "/tmp", "/data", "/etc", "/usr", "/var", "/run"}) {
    auto attr = kernel_->Stat(*proc_, dir);
    ASSERT_TRUE(attr.ok()) << dir << ": " << attr.status().ToString();
    EXPECT_TRUE(IsDir(attr->mode)) << dir;
  }
}

TEST_F(VfsTest, WriteThenReadBack) {
  WriteFile("/tmp/hello.txt", "hello world");
  EXPECT_EQ(ReadAll("/tmp/hello.txt"), "hello world");
}

TEST_F(VfsTest, WriteReadBackOnDiskFs) {
  WriteFile("/data/file.bin", std::string(100000, 'x'));
  EXPECT_EQ(ReadAll("/data/file.bin"), std::string(100000, 'x'));
}

TEST_F(VfsTest, ReadAfterFsyncAndCacheDrop) {
  WriteFile("/data/durable.txt", "persisted");
  auto fd = kernel_->Open(*proc_, "/data/durable.txt", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  // After fsync the disk holds the bytes even if the cache drops them.
  kernel_->page_cache().DropAll(nullptr);  // no-op owner; sanity only
  EXPECT_EQ(ReadAll("/data/durable.txt"), "persisted");
}

TEST_F(VfsTest, OpenNonexistentFails) {
  auto fd = kernel_->Open(*proc_, "/tmp/missing", kORdOnly);
  EXPECT_EQ(fd.error(), ENOENT);
}

TEST_F(VfsTest, OCreatExclFailsIfExists) {
  WriteFile("/tmp/a", "x");
  auto fd = kernel_->Open(*proc_, "/tmp/a", kOWrOnly | kOCreat | kOExcl);
  EXPECT_EQ(fd.error(), EEXIST);
}

TEST_F(VfsTest, AppendModeWritesAtEof) {
  WriteFile("/tmp/log", "one");
  auto fd = kernel_->Open(*proc_, "/tmp/log", kOWrOnly | kOAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), "two", 3).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  EXPECT_EQ(ReadAll("/tmp/log"), "onetwo");
}

TEST_F(VfsTest, LseekEndAndHoleReads) {
  WriteFile("/tmp/sparse", "abc");
  auto fd = kernel_->Open(*proc_, "/tmp/sparse", kORdWr);
  ASSERT_TRUE(fd.ok());
  auto pos = kernel_->Lseek(*proc_, fd.value(), 10, kSeekSet);
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(kernel_->Write(*proc_, fd.value(), "z", 1).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());
  std::string content = ReadAll("/tmp/sparse");
  ASSERT_EQ(content.size(), 11u);
  EXPECT_EQ(content.substr(0, 3), "abc");
  EXPECT_EQ(content[5], '\0');  // hole reads as zeros
  EXPECT_EQ(content[10], 'z');
}

TEST_F(VfsTest, MkdirRmdirLifecycle) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/dir").ok());
  auto attr = kernel_->Stat(*proc_, "/tmp/dir");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(IsDir(attr->mode));
  EXPECT_EQ(kernel_->Rmdir(*proc_, "/tmp/dir").error(), 0);
  EXPECT_EQ(kernel_->Stat(*proc_, "/tmp/dir").error(), ENOENT);
}

TEST_F(VfsTest, RmdirNonEmptyFails) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/dir").ok());
  WriteFile("/tmp/dir/f", "x");
  EXPECT_EQ(kernel_->Rmdir(*proc_, "/tmp/dir").error(), ENOTEMPTY);
}

TEST_F(VfsTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/dir").ok());
  EXPECT_EQ(kernel_->Unlink(*proc_, "/tmp/dir").error(), EISDIR);
}

TEST_F(VfsTest, HardlinkSharesInodeAndData) {
  WriteFile("/tmp/orig", "data");
  ASSERT_TRUE(kernel_->Link(*proc_, "/tmp/orig", "/tmp/alias").ok());
  auto a = kernel_->Stat(*proc_, "/tmp/orig");
  auto b = kernel_->Stat(*proc_, "/tmp/alias");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ino, b->ino);
  EXPECT_EQ(a->nlink, 2u);
  EXPECT_EQ(ReadAll("/tmp/alias"), "data");
  ASSERT_TRUE(kernel_->Unlink(*proc_, "/tmp/orig").ok());
  auto c = kernel_->Stat(*proc_, "/tmp/alias");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->nlink, 1u);
  EXPECT_EQ(ReadAll("/tmp/alias"), "data");
}

TEST_F(VfsTest, SymlinkResolution) {
  WriteFile("/tmp/target", "via-link");
  ASSERT_TRUE(kernel_->Symlink(*proc_, "/tmp/target", "/tmp/link").ok());
  EXPECT_EQ(ReadAll("/tmp/link"), "via-link");
  auto lst = kernel_->Lstat(*proc_, "/tmp/link");
  ASSERT_TRUE(lst.ok());
  EXPECT_TRUE(IsLnk(lst->mode));
  auto target = kernel_->Readlink(*proc_, "/tmp/link");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "/tmp/target");
}

TEST_F(VfsTest, RelativeSymlinkResolution) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/sub").ok());
  WriteFile("/tmp/sub/real", "rel");
  ASSERT_TRUE(kernel_->Symlink(*proc_, "real", "/tmp/sub/ln").ok());
  EXPECT_EQ(ReadAll("/tmp/sub/ln"), "rel");
}

TEST_F(VfsTest, SymlinkLoopFailsWithEloop) {
  ASSERT_TRUE(kernel_->Symlink(*proc_, "/tmp/b", "/tmp/a").ok());
  ASSERT_TRUE(kernel_->Symlink(*proc_, "/tmp/a", "/tmp/b").ok());
  EXPECT_EQ(kernel_->Open(*proc_, "/tmp/a", kORdOnly).error(), ELOOP);
}

TEST_F(VfsTest, RenameMovesFile) {
  WriteFile("/tmp/from", "content");
  ASSERT_TRUE(kernel_->Rename(*proc_, "/tmp/from", "/tmp/to").ok());
  EXPECT_EQ(kernel_->Stat(*proc_, "/tmp/from").error(), ENOENT);
  EXPECT_EQ(ReadAll("/tmp/to"), "content");
}

TEST_F(VfsTest, RenameReplacesExisting) {
  WriteFile("/tmp/a", "aaa");
  WriteFile("/tmp/b", "bbb");
  ASSERT_TRUE(kernel_->Rename(*proc_, "/tmp/a", "/tmp/b").ok());
  EXPECT_EQ(ReadAll("/tmp/b"), "aaa");
}

TEST_F(VfsTest, RenameNoreplaceFails) {
  WriteFile("/tmp/a", "aaa");
  WriteFile("/tmp/b", "bbb");
  EXPECT_EQ(kernel_->Rename(*proc_, "/tmp/a", "/tmp/b", kRenameNoreplace).error(), EEXIST);
}

TEST_F(VfsTest, RenameExchangeSwaps) {
  WriteFile("/tmp/a", "aaa");
  WriteFile("/tmp/b", "bbb");
  ASSERT_TRUE(kernel_->Rename(*proc_, "/tmp/a", "/tmp/b", kRenameExchange).ok());
  EXPECT_EQ(ReadAll("/tmp/a"), "bbb");
  EXPECT_EQ(ReadAll("/tmp/b"), "aaa");
}

TEST_F(VfsTest, RenameDirIntoOwnSubtreeFails) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/d").ok());
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/d/sub").ok());
  EXPECT_EQ(kernel_->Rename(*proc_, "/tmp/d", "/tmp/d/sub/d2").error(), EINVAL);
}

TEST_F(VfsTest, GetdentsListsEntries) {
  ASSERT_TRUE(kernel_->Mkdir(*proc_, "/tmp/list").ok());
  WriteFile("/tmp/list/one", "1");
  WriteFile("/tmp/list/two", "2");
  auto fd = kernel_->Open(*proc_, "/tmp/list", kORdOnly | kODirectory);
  ASSERT_TRUE(fd.ok());
  auto entries = kernel_->Getdents(*proc_, fd.value());
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& e : entries.value()) {
    names.push_back(e.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{".", "..", "one", "two"}));
}

TEST_F(VfsTest, TruncateShrinksAndZeroExtends) {
  WriteFile("/tmp/t", "1234567890");
  ASSERT_TRUE(kernel_->Truncate(*proc_, "/tmp/t", 4).ok());
  EXPECT_EQ(ReadAll("/tmp/t"), "1234");
  ASSERT_TRUE(kernel_->Truncate(*proc_, "/tmp/t", 8).ok());
  std::string content = ReadAll("/tmp/t");
  ASSERT_EQ(content.size(), 8u);
  EXPECT_EQ(content.substr(0, 4), "1234");
  EXPECT_EQ(content[6], '\0');
}

TEST_F(VfsTest, ChmodChownUpdateAttrs) {
  WriteFile("/tmp/perm", "x");
  ASSERT_TRUE(kernel_->Chmod(*proc_, "/tmp/perm", 0640).ok());
  ASSERT_TRUE(kernel_->Chown(*proc_, "/tmp/perm", 1000, 1000).ok());
  auto attr = kernel_->Stat(*proc_, "/tmp/perm");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode & kPermMask, 0640u);
  EXPECT_EQ(attr->uid, 1000u);
  EXPECT_EQ(attr->gid, 1000u);
}

TEST_F(VfsTest, PermissionDeniedForOtherUser) {
  WriteFile("/tmp/secret", "root only");
  ASSERT_TRUE(kernel_->Chmod(*proc_, "/tmp/secret", 0600).ok());
  auto user = kernel_->Fork(*proc_, "user");
  user->creds = Credentials::User(1000, 1000);
  EXPECT_EQ(kernel_->Open(*user, "/tmp/secret", kORdOnly).error(), EACCES);
  // The owner (root, via DAC override) still reads it.
  EXPECT_EQ(ReadAll("/tmp/secret"), "root only");
}

TEST_F(VfsTest, SetgidBitClearedOnChmodByNonGroupMember) {
  WriteFile("/tmp/sg", "x");
  ASSERT_TRUE(kernel_->Chown(*proc_, "/tmp/sg", 1000, 2000).ok());
  auto user = kernel_->Fork(*proc_, "user");
  user->creds = Credentials::User(1000, 1000);  // owner, but not in group 2000
  ASSERT_TRUE(kernel_->Chmod(*user, "/tmp/sg", 02755).ok());
  auto attr = kernel_->Stat(*proc_, "/tmp/sg");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode & kModeSetGid, 0u) << "setgid must be cleared";
}

TEST_F(VfsTest, XattrRoundTrip) {
  WriteFile("/tmp/x", "x");
  ASSERT_TRUE(kernel_->SetXattr(*proc_, "/tmp/x", "user.key", "value").ok());
  auto v = kernel_->GetXattr(*proc_, "/tmp/x", "user.key");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "value");
  auto list = kernel_->ListXattr(*proc_, "/tmp/x");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0], "user.key");
  ASSERT_TRUE(kernel_->RemoveXattr(*proc_, "/tmp/x", "user.key").ok());
  EXPECT_EQ(kernel_->GetXattr(*proc_, "/tmp/x", "user.key").error(), ENODATA);
}

TEST_F(VfsTest, StatfsReportsFsType) {
  auto root = kernel_->Statfs(*proc_, "/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->fs_type, "tmpfs");
  auto data = kernel_->Statfs(*proc_, "/data");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->fs_type, "ext4");
}

TEST_F(VfsTest, RlimitFsizeEnforcedOnNativeFs) {
  proc_->rlimits.fsize = 100;
  auto fd = kernel_->Open(*proc_, "/tmp/limited", kOWrOnly | kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  std::string big(200, 'x');
  EXPECT_EQ(kernel_->Write(*proc_, fd.value(), big.data(), big.size()).error(), EFBIG);
  proc_->rlimits.fsize = UINT64_MAX;
}

TEST_F(VfsTest, DupSharesOffset) {
  WriteFile("/tmp/dup", "abcdef");
  auto fd = kernel_->Open(*proc_, "/tmp/dup", kORdOnly);
  ASSERT_TRUE(fd.ok());
  auto fd2 = kernel_->Dup(*proc_, fd.value());
  ASSERT_TRUE(fd2.ok());
  char buf[3];
  ASSERT_TRUE(kernel_->Read(*proc_, fd.value(), buf, 3).ok());
  auto n = kernel_->Read(*proc_, fd2.value(), buf, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 3), "def");  // shared cursor advanced
}

TEST_F(VfsTest, NameToHandleWorksOnNativeFs) {
  WriteFile("/tmp/h", "x");
  auto handle = kernel_->NameToHandle(*proc_, "/tmp/h");
  EXPECT_TRUE(handle.ok());
}

TEST_F(VfsTest, ODirectReadsBypassCacheOnExtFs) {
  WriteFile("/data/direct", std::string(8192, 'd'));
  auto fd = kernel_->Open(*proc_, "/data/direct", kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_->Fsync(*proc_, fd.value()).ok());
  ASSERT_TRUE(kernel_->Close(*proc_, fd.value()).ok());

  auto dfd = kernel_->Open(*proc_, "/data/direct", kORdOnly | kODirect);
  ASSERT_TRUE(dfd.ok());
  char buf[4096];
  auto n = kernel_->Read(*proc_, dfd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), sizeof(buf));
  EXPECT_EQ(buf[0], 'd');
}

}  // namespace
}  // namespace cntr::kernel
