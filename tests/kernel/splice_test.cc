// Splice subsystem semantics: page-steal vs. copy fallback at the page
// cache boundary, tee refcounting (shared pages are never mutated in
// place), pipe resize limits (the F_SETPIPE_SZ analogue), the vmsplice /
// tee / pipe-to-pipe splice syscalls, and the PipeBuffer partial-write
// audit — a write that queued >0 bytes under backpressure reports the short
// count, never EAGAIN/EPIPE.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "src/kernel/kernel.h"
#include "src/kernel/page_cache.h"
#include "src/kernel/pipe.h"
#include "src/splice/page_ref.h"
#include "src/splice/splice.h"

namespace cntr::kernel {
namespace {

class SpliceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = Kernel::Create();
    proc_ = kernel_->Fork(*kernel_->init(), "splice");
  }

  std::pair<Fd, Fd> MakePipe() {
    auto pipe = kernel_->Pipe(*proc_);
    EXPECT_TRUE(pipe.ok());
    return pipe.value();
  }

  std::unique_ptr<Kernel> kernel_;
  ProcessPtr proc_;
};

// --- PipeBuffer partial-write audit (regression tests) ---

TEST_F(SpliceTest, NonblockShortWriteReturnsBytesWrittenNotEagain) {
  PipeBuffer buf(nullptr, /*capacity=*/4096);
  buf.AddReader();
  buf.AddWriter();
  std::string payload(8192, 'x');
  auto n = buf.Write(payload.data(), payload.size(), /*nonblock=*/true);
  ASSERT_TRUE(n.ok()) << "a short write with >0 bytes queued must not be EAGAIN";
  EXPECT_EQ(n.value(), 4096u);
  // Nothing fits now: only a write that queued zero bytes may fail EAGAIN.
  EXPECT_EQ(buf.Write(payload.data(), payload.size(), true).error(), EAGAIN);
}

TEST_F(SpliceTest, WriteAfterReaderVanishesReportsShortCount) {
  PipeBuffer buf(nullptr, /*capacity=*/4096);
  buf.AddReader();
  buf.AddWriter();
  std::string payload(8192, 'y');
  std::thread writer([&] {
    auto n = buf.Write(payload.data(), payload.size(), /*nonblock=*/false);
    // 4096 bytes queued, then the reader vanished: short count, not EPIPE.
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 4096u);
  });
  while (buf.Available() < 4096) {
    std::this_thread::yield();
  }
  buf.DropReader();  // writer is blocked on a full ring with 4096 queued
  writer.join();
  // With no readers and nothing queued by this call: EPIPE.
  EXPECT_EQ(buf.Write(payload.data(), 1, true).error(), EPIPE);
}

TEST_F(SpliceTest, BlockedWriterResumesWhenReaderDrains) {
  PipeBuffer buf(nullptr, /*capacity=*/4096);
  buf.AddReader();
  buf.AddWriter();
  std::string payload(6000, 'z');
  std::thread writer([&] {
    auto n = buf.Write(payload.data(), payload.size(), /*nonblock=*/false);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 6000u);
  });
  while (buf.Available() < 4096) {
    std::this_thread::yield();
  }
  char sink[4096];
  ASSERT_TRUE(buf.Read(sink, sizeof(sink), false).ok());
  writer.join();
  EXPECT_EQ(buf.Available(), 6000u - 4096u);
}

// --- pipe resize (F_SETPIPE_SZ analogue) ---

TEST_F(SpliceTest, SetCapacityRoundsUpToPowerOfTwo) {
  PipeBuffer buf(nullptr, 65536);
  auto cap = buf.SetCapacity(5000);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap.value(), 8192u);
  EXPECT_EQ(buf.capacity(), 8192u);
}

TEST_F(SpliceTest, SetCapacityRefusesBelowBufferedData) {
  PipeBuffer buf(nullptr, 65536);
  buf.AddReader();
  buf.AddWriter();
  std::string payload(10000, 'a');
  ASSERT_TRUE(buf.Write(payload.data(), payload.size(), false).ok());
  EXPECT_EQ(buf.SetCapacity(4096).error(), EBUSY);
  EXPECT_EQ(buf.capacity(), 65536u);
}

TEST_F(SpliceTest, SetCapacityEnforcesUnprivilegedMax) {
  PipeBuffer buf(nullptr, 65536);
  EXPECT_EQ(buf.SetCapacity(kPipeMaxCapacity + 1).error(), EPERM);
  auto cap = buf.SetCapacity(kPipeMaxCapacity);
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(cap.value(), kPipeMaxCapacity);
}

TEST_F(SpliceTest, PipeSizeSyscallsRoundTrip) {
  auto [rfd, wfd] = MakePipe();
  auto got = kernel_->GetPipeSize(*proc_, rfd);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 65536u);
  // Either end names the same ring.
  auto set = kernel_->SetPipeSize(*proc_, wfd, 128 * 1024);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value(), 128u * 1024u);
  got = kernel_->GetPipeSize(*proc_, rfd);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 128u * 1024u);
  EXPECT_EQ(kernel_->SetPipeSize(*proc_, rfd, 2 << 20).error(), EPERM);
}

// --- segment machinery: push/pop, splitting, tee refcounting ---

TEST_F(SpliceTest, PopSegmentsSplitsAtByteBudget) {
  PipeBuffer buf(nullptr, 65536);
  buf.AddReader();
  buf.AddWriter();
  std::vector<PipeSegment> segs;
  segs.push_back(PipeSegment::Of(splice::PageRef::Copy("aaaa", 4)));
  segs.push_back(PipeSegment::Of(splice::PageRef::Copy("bbbbbbbb", 8)));
  ASSERT_TRUE(buf.PushSegments(std::move(segs), false).ok());
  auto head = buf.PopSegments(/*max_bytes=*/6, false);
  ASSERT_TRUE(head.ok());
  ASSERT_EQ(head->size(), 2u);
  EXPECT_EQ(std::string((*head)[0].data(), (*head)[0].size()), "aaaa");
  EXPECT_EQ(std::string((*head)[1].data(), (*head)[1].size()), "bb");
  // The split tail stayed queued and shares the second page.
  EXPECT_EQ(buf.Available(), 6u);
  char rest[16];
  auto n = buf.Read(rest, sizeof(rest), true);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(rest, n.value()), "bbbbbb");
}

TEST_F(SpliceTest, TeeDuplicatesWithoutConsumingAndNeverMutatesSharedPages) {
  auto [rfd_a, wfd_a] = MakePipe();
  auto [rfd_b, wfd_b] = MakePipe();
  ASSERT_TRUE(kernel_->Write(*proc_, wfd_a, "shared payload", 14).ok());
  auto teed = kernel_->Tee(*proc_, rfd_a, wfd_b, 1 << 16);
  ASSERT_TRUE(teed.ok());
  EXPECT_EQ(teed.value(), 14u);
  EXPECT_GT(kernel_->splice_engine().stats().teed_pages, 0u);
  // The source still has its bytes; appending to it after the tee must not
  // leak into the duplicate (the shared tail page is copy-protected).
  ASSERT_TRUE(kernel_->Write(*proc_, wfd_a, "+MORE", 5).ok());
  char a[64];
  auto na = kernel_->Read(*proc_, rfd_a, a, sizeof(a));
  ASSERT_TRUE(na.ok());
  EXPECT_EQ(std::string(a, na.value()), "shared payload+MORE");
  char b[64];
  auto nb = kernel_->Read(*proc_, rfd_b, b, sizeof(b));
  ASSERT_TRUE(nb.ok());
  EXPECT_EQ(std::string(b, nb.value()), "shared payload");
}

TEST_F(SpliceTest, VmspliceThenPipeToPipeSpliceMovesBytes) {
  auto [rfd_a, wfd_a] = MakePipe();
  auto [rfd_b, wfd_b] = MakePipe();
  std::string payload(3 * kPageSize + 17, 'v');
  auto in = kernel_->Vmsplice(*proc_, wfd_a, payload.data(), payload.size(), /*gift=*/true);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value(), payload.size());
  auto moved = kernel_->Splice(*proc_, rfd_a, wfd_b, 1 << 20);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), payload.size());
  std::string out(payload.size(), '\0');
  size_t got = 0;
  while (got < out.size()) {
    auto n = kernel_->Read(*proc_, rfd_b, out.data() + got, out.size() - got);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    got += n.value();
  }
  EXPECT_EQ(out, payload);
  EXPECT_GT(kernel_->splice_engine().stats().spliced_pages, 0u);
}

TEST_F(SpliceTest, SpliceToFullPipeLeavesUnmovedBytesInSource) {
  auto [rfd_a, wfd_a] = MakePipe();
  auto [rfd_b, wfd_b] = MakePipe();
  ASSERT_TRUE(kernel_->SetPipeSize(*proc_, wfd_b, kPageSize).ok());
  // Nonblocking destination: the splice can only move what fits.
  auto bfile = kernel_->GetFile(*proc_, wfd_b);
  ASSERT_TRUE(bfile.ok());
  (*bfile)->set_flags((*bfile)->flags() | kONonblock);
  std::string payload(3 * kPageSize, 'q');
  ASSERT_TRUE(kernel_->Vmsplice(*proc_, wfd_a, payload.data(), payload.size(), true).ok());
  auto moved = kernel_->Splice(*proc_, rfd_a, wfd_b, 1 << 20);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), static_cast<size_t>(kPageSize)) << "only one page fits";
  // splice(2) must not lose the unmoved tail: it stays readable from the
  // source pipe.
  std::string rest(2 * kPageSize, '\0');
  size_t got = 0;
  while (got < rest.size()) {
    auto n = kernel_->Read(*proc_, rfd_a, rest.data() + got, rest.size() - got);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    got += n.value();
  }
  EXPECT_EQ(rest, std::string(2 * kPageSize, 'q'));
}

TEST_F(SpliceTest, VmspliceNeedsPipeWriteEnd) {
  auto [rfd, wfd] = MakePipe();
  char byte = 'x';
  EXPECT_EQ(kernel_->Vmsplice(*proc_, rfd, &byte, 1).error(), EBADF);
  (void)wfd;
}

// --- page cache reference surface: steal, alias, copy fallback, COW ---

TEST_F(SpliceTest, StorePageRefStealsUniqueRefs) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  splice::PageRef ref = splice::PageRef::Copy("unique page", 11);
  ref.len = kPageSize;  // full page (zero-padded by Alloc inside Copy)
  auto res = pool.StorePageRef(&owner, 0, ref, /*dirty=*/false, /*allow_alias=*/false);
  EXPECT_EQ(res.mode, PageCachePool::StoreRefMode::kStolen);
  char out[kPageSize];
  ASSERT_TRUE(pool.PeekPage(&owner, 0, out));
  EXPECT_EQ(std::memcmp(out, ref.data(), kPageSize), 0);
  EXPECT_GT(pool.stats().ref_steals, 0u);
}

TEST_F(SpliceTest, StorePageRefSharedRefAliasesOrCopiesPerPolicy) {
  auto& pool = kernel_->page_cache();
  int owner_a = 0;
  int owner_b = 0;
  splice::PageRef ref = splice::PageRef::Alloc(kPageSize);
  std::memcpy(ref.mutable_data(), "shared", 6);
  splice::PageRef keep = ref;  // second holder: no longer unique
  auto aliased = pool.StorePageRef(&owner_a, 0, ref, false, /*allow_alias=*/true);
  EXPECT_EQ(aliased.mode, PageCachePool::StoreRefMode::kAliased);
  auto copied = pool.StorePageRef(&owner_b, 0, ref, false, /*allow_alias=*/false);
  EXPECT_EQ(copied.mode, PageCachePool::StoreRefMode::kCopied);
  char out[kPageSize];
  ASSERT_TRUE(pool.PeekPage(&owner_a, 0, out));
  EXPECT_EQ(std::memcmp(out, keep.data(), kPageSize), 0);
  ASSERT_TRUE(pool.PeekPage(&owner_b, 0, out));
  EXPECT_EQ(std::memcmp(out, keep.data(), kPageSize), 0);
}

TEST_F(SpliceTest, ShortRefAlwaysCopies) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  splice::PageRef ref = splice::PageRef::Copy("tail", 4);  // len < kPageSize
  auto res = pool.StorePageRef(&owner, 0, ref, false, /*allow_alias=*/true);
  EXPECT_EQ(res.mode, PageCachePool::StoreRefMode::kCopied);
}

TEST_F(SpliceTest, WritesToSharedPagesCopyOnWrite) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  char page[kPageSize];
  std::memset(page, 'o', kPageSize);
  pool.StorePage(&owner, 0, page, /*dirty=*/false);
  auto ref = pool.GetPageRef(&owner, 0);
  ASSERT_TRUE(ref.has_value());
  // Overwrite the cached page while the splice ref is outstanding: the
  // cache must un-share first, so the in-flight ref keeps the old bytes.
  std::memset(page, 'n', kPageSize);
  pool.StorePage(&owner, 0, page, /*dirty=*/false);
  EXPECT_EQ(ref->data()[0], 'o') << "spliced-out payload must not see later writes";
  char out[kPageSize];
  ASSERT_TRUE(pool.PeekPage(&owner, 0, out));
  EXPECT_EQ(out[0], 'n');
  EXPECT_GT(pool.stats().cow_breaks, 0u);
}

TEST_F(SpliceTest, UpdatePageCopiesOnWriteToo) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  char page[kPageSize];
  std::memset(page, 'o', kPageSize);
  pool.StorePage(&owner, 0, page, false);
  auto ref = pool.GetPageRef(&owner, 0);
  ASSERT_TRUE(ref.has_value());
  char patch[4] = {'n', 'n', 'n', 'n'};
  EXPECT_EQ(pool.UpdatePage(&owner, 0, 0, 4, patch, false),
            PageCachePool::UpdateResult::kUpdated);
  EXPECT_EQ(ref->data()[0], 'o');
  char out[kPageSize];
  ASSERT_TRUE(pool.PeekPage(&owner, 0, out));
  EXPECT_EQ(out[0], 'n');
  EXPECT_EQ(out[4], 'o');
}

TEST_F(SpliceTest, StealPageRemovesSourceEntry) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  char page[kPageSize];
  std::memset(page, 's', kPageSize);
  pool.StorePage(&owner, 0, page, /*dirty=*/false);
  auto stolen = pool.StealPage(&owner, 0);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(stolen->unique()) << "a stolen page has no other owners";
  EXPECT_FALSE(pool.HasPage(&owner, 0)) << "the donor cache entry is gone";
  EXPECT_EQ(stolen->data()[0], 's');
}

TEST_F(SpliceTest, StealPageRefusesDirtyPages) {
  auto& pool = kernel_->page_cache();
  int owner = 0;
  char page[kPageSize];
  std::memset(page, 'd', kPageSize);
  pool.StorePage(&owner, 0, page, /*dirty=*/true);
  EXPECT_FALSE(pool.StealPage(&owner, 0).has_value()) << "writeback pins dirty pages";
  pool.MarkClean(&owner, 0);
  EXPECT_TRUE(pool.StealPage(&owner, 0).has_value());
}

TEST_F(SpliceTest, PushSegmentsRequireAllIsAtomic) {
  PipeBuffer buf(nullptr, /*capacity=*/2 * kPageSize);
  buf.AddReader();
  buf.AddWriter();
  std::vector<PipeSegment> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(PipeSegment::Of(splice::PageRef::Alloc(kPageSize)));
  }
  EXPECT_EQ(buf.PushSegments(std::move(three), /*nonblock=*/true, /*require_all=*/true).error(),
            EAGAIN);
  EXPECT_EQ(buf.Available(), 0u) << "an all-or-nothing push must not queue a partial payload";
  std::vector<PipeSegment> two;
  for (int i = 0; i < 2; ++i) {
    two.push_back(PipeSegment::Of(splice::PageRef::Alloc(kPageSize)));
  }
  auto pushed = buf.PushSegments(std::move(two), true, true);
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(pushed.value(), 2u * kPageSize);
}

}  // namespace
}  // namespace cntr::kernel
