// Tests for the lambda extension (paper §6 future work): deploy/invoke
// lifecycle, cold/warm behaviour, and the headline feature — attaching CNTR
// with a fat tools image to a live lambda invocation.
#include <gtest/gtest.h>

#include "src/container/lambda.h"
#include "src/core/attach.h"

namespace cntr::container {
namespace {

FunctionSpec Thumbnailer() {
  FunctionSpec spec;
  spec.name = "thumbnailer";
  spec.runtime = "python3.9";
  spec.handler = [](kernel::Kernel* kernel, kernel::Process& proc,
                    const std::string& payload) -> StatusOr<std::string> {
    // Reads its manifest, writes a scratch result — real filesystem work
    // inside the invocation container.
    CNTR_ASSIGN_OR_RETURN(kernel::Fd in, kernel->Open(proc, "/var/task/manifest.json",
                                                      kernel::kORdOnly));
    char buf[256] = {};
    CNTR_RETURN_IF_ERROR(kernel->Read(proc, in, buf, sizeof(buf)).status());
    CNTR_RETURN_IF_ERROR(kernel->Close(proc, in));
    CNTR_ASSIGN_OR_RETURN(kernel::Fd out,
                          kernel->Open(proc, "/tmp/last-payload",
                                       kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc));
    CNTR_RETURN_IF_ERROR(kernel->Write(proc, out, payload.data(), payload.size()).status());
    CNTR_RETURN_IF_ERROR(kernel->Close(proc, out));
    kernel->clock().Advance(5'000'000);  // 5ms of "image processing"
    return std::string("thumb(") + payload + ")";
  };
  return spec;
}

class LambdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    platform_ = std::make_unique<LambdaPlatform>(kernel_.get(), runtime_.get());
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<LambdaPlatform> platform_;
};

TEST_F(LambdaTest, DeployRequiresHandler) {
  FunctionSpec broken;
  broken.name = "no-handler";
  EXPECT_EQ(platform_->Deploy(std::move(broken)).error(), EINVAL);
}

TEST_F(LambdaTest, InvokeMissingFunctionFails) {
  EXPECT_EQ(platform_->Invoke("ghost", "{}").error(), ENOENT);
}

TEST_F(LambdaTest, ColdThenWarmInvocations) {
  ASSERT_TRUE(platform_->Deploy(Thumbnailer()).ok());
  auto first = platform_->Invoke("thumbnailer", "img-1");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->cold_start);
  EXPECT_EQ(first->response, "thumb(img-1)");

  auto second = platform_->Invoke("thumbnailer", "img-2");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cold_start) << "warm instance must be reused";
  EXPECT_LT(second->duration_ms, first->duration_ms) << "warm must be faster than cold";
  EXPECT_EQ(platform_->stats().invocations, 2u);
  EXPECT_EQ(platform_->stats().cold_starts, 1u);
}

TEST_F(LambdaTest, WarmInstanceIsAMicroContainer) {
  ASSERT_TRUE(platform_->Deploy(Thumbnailer()).ok());
  ASSERT_TRUE(platform_->Invoke("thumbnailer", "x").ok());
  auto pid = platform_->WarmInstancePid("thumbnailer");
  ASSERT_TRUE(pid.ok());
  auto proc = kernel_->procs().Get(pid.value());
  ASSERT_NE(proc, nullptr);
  // Isolated namespaces, lambda cgroup, and a runtime-only filesystem:
  EXPECT_NE(proc->mnt_ns, kernel_->init()->mnt_ns);
  EXPECT_NE(proc->cgroup->Path().find("lambda.slice"), std::string::npos);
  EXPECT_TRUE(kernel_->Stat(*proc, "/var/task/handler.bin").ok());
  EXPECT_EQ(kernel_->Stat(*proc, "/usr/bin/gdb").error(), ENOENT) << "no tools in the lambda";
}

TEST_F(LambdaTest, CntrAttachesToWarmInvocationWithFatTools) {
  // The §6 scenario end to end: lambda platform + CNTR + fat debug image.
  Registry registry(&kernel_->clock());
  auto docker = std::make_shared<DockerEngine>(runtime_.get(), &registry);
  auto tools = docker->Run("lambda-debug", MakeFatToolsImage());
  ASSERT_TRUE(tools.ok());

  ASSERT_TRUE(platform_->Deploy(Thumbnailer()).ok());
  ASSERT_TRUE(platform_->Invoke("thumbnailer", "debug-me").ok());

  core::Cntr cntr(kernel_.get());
  cntr.RegisterEngine(std::make_shared<LambdaEngine>(platform_.get()));
  cntr.RegisterEngine(docker);

  core::AttachOptions opts;
  opts.fat_container = "lambda-debug";
  opts.fat_engine = "docker";
  auto session = cntr.Attach("lambda", "thumbnailer", opts);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Tools from the debug image, the function's world at /var/lib/cntr.
  EXPECT_EQ(session.value()->Execute("which gdb"), "/usr/bin/gdb\n");
  std::string manifest = session.value()->Execute("cat /var/lib/cntr/var/task/manifest.json");
  EXPECT_NE(manifest.find("thumbnailer"), std::string::npos) << manifest;
  std::string payload = session.value()->Execute("cat /var/lib/cntr/tmp/last-payload");
  EXPECT_EQ(payload, "debug-me");
  std::string gdb = session.value()->Execute("gdb -p 1");
  EXPECT_NE(gdb.find("Attaching to process 1"), std::string::npos);

  // The function keeps serving while the session is attached.
  auto during = platform_->Invoke("thumbnailer", "img-3");
  ASSERT_TRUE(during.ok());
  EXPECT_FALSE(during->cold_start);
  EXPECT_TRUE(session.value()->Detach().ok());
}

TEST_F(LambdaTest, AttachBeforeAnyInvocationFailsCleanly) {
  ASSERT_TRUE(platform_->Deploy(Thumbnailer()).ok());
  core::Cntr cntr(kernel_.get());
  cntr.RegisterEngine(std::make_shared<LambdaEngine>(platform_.get()));
  auto session = cntr.Attach("lambda", "thumbnailer");
  EXPECT_EQ(session.error(), ESRCH) << "no warm instance to attach to";
}

}  // namespace
}  // namespace cntr::container
