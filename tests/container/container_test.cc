// Unit tests for the container substrate: images, the registry's layer
// dedup and bandwidth model, the runtime's isolation, and the four engine
// adapters' naming/resolution conventions.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/util/strings.h"

namespace cntr::container {
namespace {

Image TestImage(const std::string& name) {
  Image image(name, "latest");
  Layer layer;
  layer.id = name + "-app";
  layer.files.push_back({"/usr/bin/app", 4 << 20, 0755, FileClass::kAppBinary, ""});
  layer.files.push_back({"/etc/app.conf", 0, 0644, FileClass::kConfig, "k=v\n"});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/app";
  return image;
}

TEST(ImageTest, FlattenShadowsLowerLayers) {
  Image image("test", "latest");
  Layer base;
  base.id = "base";
  base.files.push_back({"/etc/conf", 100, 0644, FileClass::kConfig, ""});
  base.files.push_back({"/bin/tool", 1000, 0755, FileClass::kCoreutils, ""});
  Layer upper;
  upper.id = "upper";
  upper.files.push_back({"/etc/conf", 200, 0644, FileClass::kConfig, ""});
  image.AddLayer(std::move(base));
  image.AddLayer(std::move(upper));
  auto files = image.Flatten();
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    if (f.path == "/etc/conf") {
      EXPECT_EQ(f.size, 200u) << "upper layer must shadow";
    }
  }
  EXPECT_EQ(image.TotalBytes(), 1200u);
}

TEST(ImageTest, FatToolsImageShipsDebuggers) {
  Image fat = MakeFatToolsImage();
  EXPECT_GT(fat.BytesOfClass(FileClass::kDebugTool), 10u << 20);
  bool has_gdb = false;
  for (const auto& f : fat.Flatten()) {
    if (f.path == "/usr/bin/gdb") {
      has_gdb = true;
    }
  }
  EXPECT_TRUE(has_gdb);
}

TEST(RegistryTest, PullChargesTransferTime) {
  SimClock clock;
  Registry registry(&clock, /*bandwidth=*/100 << 20);
  registry.Push(TestImage("acme/app"));
  uint64_t before = clock.NowNs();
  auto image = registry.Pull("acme/app:latest", "node-1");
  ASSERT_TRUE(image.ok());
  uint64_t elapsed = clock.NowNs() - before;
  // 4MB at 100MB/s ≈ 40ms of virtual time.
  EXPECT_GT(elapsed, 30'000'000u);
  EXPECT_LT(elapsed, 60'000'000u);
}

TEST(RegistryTest, SharedLayersAreNotRetransferred) {
  SimClock clock;
  Registry registry(&clock);
  Image a("acme/a", "latest");
  Image b("acme/b", "latest");
  Layer shared_base = MakeBaseDistroLayer("debian");
  a.AddLayer(shared_base);
  b.AddLayer(shared_base);
  registry.Push(a);
  registry.Push(b);
  ASSERT_TRUE(registry.Pull("acme/a:latest", "node").ok());
  uint64_t after_first = registry.bytes_transferred();
  ASSERT_TRUE(registry.Pull("acme/b:latest", "node").ok());
  EXPECT_EQ(registry.bytes_transferred(), after_first)
      << "the shared base layer is already on the node";
}

TEST(RegistryTest, MissingImageFailsEnoent) {
  SimClock clock;
  Registry registry(&clock);
  EXPECT_EQ(registry.Pull("ghost:latest", "node").error(), ENOENT);
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<Registry>(&kernel_->clock());
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<ContainerRuntime> runtime_;
  std::unique_ptr<Registry> registry_;
};

TEST_F(EngineTest, RuntimeIsolatesNamespacesAndAppliesSpec) {
  DockerEngine docker(runtime_.get(), registry_.get());
  auto c = docker.Run("svc", TestImage("acme/svc"));
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto init = kernel_->init();
  auto proc = c.value()->init_proc();
  EXPECT_NE(proc->mnt_ns, init->mnt_ns);
  EXPECT_NE(proc->pid_ns, init->pid_ns);
  EXPECT_NE(proc->net_ns, init->net_ns);
  EXPECT_EQ(proc->ns_pids.back(), 1);  // pid 1 inside
  EXPECT_FALSE(proc->creds.HasCap(kernel::Capability::kSysAdmin));
  EXPECT_TRUE(proc->creds.HasCap(kernel::Capability::kChown));
  EXPECT_EQ(proc->lsm.name, "docker-default");
  // The container sees its own files at /, not the host's.
  auto attr = kernel_->Stat(*proc, "/usr/bin/app");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(kernel_->Stat(*proc, "/containers").error(), ENOENT);
  // And its procfs shows only itself.
  auto status = kernel_->Open(*proc, "/proc/1/status", kernel::kORdOnly);
  EXPECT_TRUE(status.ok());
}

TEST_F(EngineTest, DockerUses64HexIdsAndPrefixResolution) {
  DockerEngine docker(runtime_.get(), registry_.get());
  auto c = docker.Run("db", TestImage("acme/db"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->id().size(), 64u);
  EXPECT_EQ(c.value()->id().find_first_not_of("0123456789abcdef"), std::string::npos);
  // Name, full id, and unambiguous prefix all resolve.
  EXPECT_TRUE(docker.ResolveNameToPid("db").ok());
  EXPECT_TRUE(docker.ResolveNameToPid(c.value()->id()).ok());
  EXPECT_TRUE(docker.ResolveNameToPid(c.value()->id().substr(0, 12)).ok());
  EXPECT_EQ(docker.ResolveNameToPid("nope").error(), ENOENT);
  EXPECT_EQ(c.value()->cgroup()->Path(), "/docker/" + c.value()->id());
}

TEST_F(EngineTest, LxcUsesPlainNamesOnly) {
  LxcEngine lxc(runtime_.get(), registry_.get());
  auto c = lxc.Run("web", TestImage("acme/web"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value()->id(), "web");
  EXPECT_TRUE(lxc.ResolveNameToPid("web").ok());
  EXPECT_EQ(lxc.ResolveNameToPid("we").error(), ENOENT) << "lxc does not prefix-match";
  EXPECT_NE(c.value()->cgroup()->Path().find("lxc.payload.web"), std::string::npos);
}

TEST_F(EngineTest, RktUsesUuidsWithPrefixResolution) {
  RktEngine rkt(runtime_.get(), registry_.get());
  auto c = rkt.Run("pod", TestImage("acme/pod"));
  ASSERT_TRUE(c.ok());
  // 8-4-4-4-12 uuid shape.
  EXPECT_EQ(c.value()->id().size(), 36u);
  EXPECT_EQ(c.value()->id()[8], '-');
  EXPECT_EQ(c.value()->id()[13], '-');
  EXPECT_TRUE(rkt.ResolveNameToPid(c.value()->id().substr(0, 8)).ok());
  EXPECT_NE(c.value()->cgroup()->Path().find("machine.slice"), std::string::npos);
}

TEST_F(EngineTest, NspawnUsesMachineNames) {
  NspawnEngine nspawn(runtime_.get(), registry_.get());
  auto c = nspawn.Run("vm1", TestImage("acme/vm"));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(nspawn.ResolveNameToPid("vm1").ok());
  EXPECT_NE(c.value()->cgroup()->Path().find("systemd-nspawn@vm1"), std::string::npos);
}

TEST_F(EngineTest, StoppedContainerNoLongerResolves) {
  DockerEngine docker(runtime_.get(), registry_.get());
  auto c = docker.Run("ephemeral", TestImage("acme/e"));
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(docker.Stop("ephemeral").ok());
  EXPECT_FALSE(docker.ResolveNameToPid("ephemeral").ok());
}

TEST_F(EngineTest, DuplicateNameRejected) {
  DockerEngine docker(runtime_.get(), registry_.get());
  ASSERT_TRUE(docker.Run("dup", TestImage("acme/a")).ok());
  EXPECT_EQ(docker.Run("dup", TestImage("acme/b")).error(), EEXIST);
}

TEST_F(EngineTest, RunFromRegistryPullsImage) {
  DockerEngine docker(runtime_.get(), registry_.get());
  registry_->Push(TestImage("acme/pulled"));
  auto c = docker.RunFromRegistry("svc", "acme/pulled:latest");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_GT(registry_->bytes_transferred(), 0u);
}

TEST_F(EngineTest, UserNamespaceMappingApplied) {
  DockerEngine docker(runtime_.get(), registry_.get());
  ContainerSpec spec;
  spec.uid_map = {{0, 100000, 65536}};
  auto c = docker.Run("mapped", TestImage("acme/m"), spec);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.value()->init_proc()->user_ns->IsInitial());
  EXPECT_EQ(c.value()->init_proc()->user_ns->MapUidToHost(0), 100000u);
}

}  // namespace
}  // namespace cntr::container
