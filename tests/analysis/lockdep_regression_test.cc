// Regression tests for the three real wait-cycle findings the lockdep
// validator flagged when the Checked* wrappers were first adopted (each ran
// as a hard deadlock *shape*, benign only because reshape_mu_'s exclusive
// side happens to be try-lock-only today):
//
//   1. A timed-out submitter escalated to FuseConn::Abort() while still
//      holding reshape_mu_ shared — Abort sweeps and notifies every
//      channel's reply_cv, and other submitters park on reply_cv holding
//      reshape_mu_ shared (reply_cv <-> reshape_mu_ cycle).
//   2. A ring submitter freed its completion slot and woke SQ-full parkers
//      (sq_cv) before releasing reshape_mu_; the parkers hold reshape_mu_
//      shared (sq_cv <-> reshape_mu_ cycle).
//   3. FuseServerPool::RunControllerPass quarantined a crashed mount —
//      Abort(), notifying reply_cv — while holding controller_pass_mu_,
//      which the same pass also holds while blocking on queued_depth()'s
//      reshape_mu_ (reshape ~> reply_cv ~> controller_pass ~> reshape).
//   4. MetricsRegistry exposition invoked sampling callbacks under the
//      registry mutex; callbacks take subsystem locks (dcache shards,
//      page-cache stats) that instrumented request paths hold while
//      recording into the registry (registry ~> shard vs shard ~> registry).
//
// Each test drives the fixed path with the validator armed and a capturing
// handler installed: a regression reintroducing the inversion fails here
// with the full two-stack report, without needing CNTR_LOCKDEP=1 in the
// environment.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/lockdep.h"
#include "src/fuse/fuse_conn.h"
#include "src/fuse/fuse_server.h"
#include "src/fuse/fuse_server_pool.h"
#include "src/obs/metrics.h"
#include "src/util/sim_clock.h"

namespace cntr::analysis {
namespace {

using fuse::FuseConn;
using fuse::FuseHandler;
using fuse::FuseReply;
using fuse::FuseRequest;
using fuse::FuseServerPool;
using fuse::FuseServerPoolOptions;

class LockdepRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = LockdepEnabled();
    SetLockdepEnabled(false);
    LockdepResetForTest();
    SetLockdepReportHandler([this](const LockdepReport& r) {
      ++reports_;
      last_ = r;
    });
    SetLockdepEnabled(true);
  }

  void TearDown() override {
    SetLockdepEnabled(was_enabled_);
    SetLockdepReportHandler(nullptr);
    LockdepResetForTest();
  }

  std::atomic<int> reports_{0};
  LockdepReport last_;
  bool was_enabled_ = false;
};

// Finding 1: timeout-escalated Abort no longer runs under reshape_mu_.
TEST_F(LockdepRegressionTest, TimeoutEscalatedAbortDoesNotNotifyUnderReshape) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs);
  conn.SetRequestDeadline(1'000'000, /*real_grace_ms=*/10);
  conn.SetAbortOnConsecutiveTimeouts(2);
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ETIMEDOUT);
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ETIMEDOUT);
  EXPECT_TRUE(conn.aborted());
  EXPECT_EQ(conn.SendAndWait(FuseRequest{}).error(), ENOTCONN);
  EXPECT_EQ(reports_.load(), 0) << last_.details;
}

// Finding 2: completion-side sq_cv wakeups are deferred past the reshape
// window. Over-subscribe a minimum-depth ring so submitters park SQ-full
// (recording the reshape -> sq_cv wait edge), then complete everything —
// every completing submitter wakes the parkers on its way out.
TEST_F(LockdepRegressionTest, RingSqWakeupsHappenOutsideTheReshapeWindow) {
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1);
  ASSERT_EQ(conn.ConfigureRing(fuse::kMinRingDepth), fuse::kMinRingDepth);

  constexpr int kClients = 3 * static_cast<int>(fuse::kMinRingDepth);
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      FuseRequest req;
      req.opcode = fuse::FuseOpcode::kGetattr;
      if (conn.SendAndWait(std::move(req)).ok()) {
        ok.fetch_add(1);
      }
    });
  }
  while (conn.channel_queue_depth(0) < fuse::kMinRingDepth) {
    std::this_thread::yield();
  }
  std::thread server([&] {
    int served = 0;
    while (served < kClients) {
      std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
      for (FuseRequest& req : batch) {
        conn.WriteReply(req.unique, FuseReply{});
        ++served;
      }
    }
  });
  for (auto& t : clients) {
    t.join();
  }
  server.join();
  EXPECT_EQ(ok.load(), kClients);
  conn.Abort();
  EXPECT_EQ(reports_.load(), 0) << last_.details;
}

// Finding 3: the controller pass defers quarantine Aborts until
// controller_pass_mu_ is released. A submitter parked on another
// connection's reply_cv records the class-level reshape -> reply_cv edge;
// the pass must quarantine the crashed mount (Abort -> notify) and poll the
// healthy mount's queued_depth (reshape_mu_) without closing the cycle.
TEST_F(LockdepRegressionTest, ControllerPassQuarantineAbortsOutsidePassLock) {
  class NullHandler : public FuseHandler {
   public:
    FuseReply Handle(const FuseRequest&) override { return FuseReply{}; }
  };
  SimClock clock;
  CostModel costs;
  NullHandler handler;

  // Standalone connection with a parked submitter: records
  // reshape(shared) -> reply_cv in the class graph, exactly what a live
  // tenant's in-flight request contributes.
  FuseConn parked(&clock, &costs);
  std::thread submitter([&] {
    (void)parked.SendAndWait(FuseRequest{});  // resolves ENOTCONN on Abort
  });
  while (parked.queued_depth() == 0) {
    std::this_thread::yield();
  }

  FuseServerPoolOptions opts;
  opts.min_threads = 1;
  opts.max_threads = 1;
  opts.controller_interval_ms = 0;  // manual passes only
  FuseServerPool pool(opts);
  auto crashed = std::make_shared<FuseConn>(&clock, &costs);
  auto healthy = std::make_shared<FuseConn>(&clock, &costs);
  pool.AddMount(crashed, &handler);
  pool.AddMount(healthy, &handler);
  crashed->Abort();  // health check in the next pass quarantines it

  pool.RunControllerPass();

  parked.Abort();  // release the parked submitter
  submitter.join();
  pool.Stop();
  EXPECT_EQ(reports_.load(), 0) << last_.details;
}

// Finding 4: exposition samples callbacks with the registry mutex
// released. The subsystem lock below stands in for a dcache shard: the
// request path locks it and then touches the registry (shard -> registry);
// the callback samples subsystem state under the same lock. Rendering
// under the old scheme added registry -> shard and closed the cycle.
TEST_F(LockdepRegressionTest, ExpositionSamplesCallbacksOutsideRegistryLock) {
  obs::MetricsRegistry registry;
  CheckedMutex subsys("test.lockdep.metrics.subsys");
  uint64_t value = 0;

  uint64_t handle = registry.AddCallback("test_subsys_gauge", {}, [&] {
    std::lock_guard<CheckedMutex> lock(subsys);
    return static_cast<double>(value);
  });

  // Instrumented request path: subsystem lock held while resolving an
  // instrument (which takes the registry mutex).
  {
    std::lock_guard<CheckedMutex> lock(subsys);
    value = 7;
    registry.GetCounter("test_requests_total")->Add(1);
  }

  EXPECT_NE(registry.SnapshotJson().find("\"test_subsys_gauge\":7"),
            std::string::npos);
  EXPECT_NE(registry.RenderPrometheus().find("test_subsys_gauge 7"),
            std::string::npos);
  registry.RemoveCallback(handle);
  EXPECT_EQ(reports_.load(), 0) << last_.details;
}

}  // namespace
}  // namespace cntr::analysis
