// Tests for the lockdep-style concurrency validator (src/analysis/).
//
// Deliberate inversions here are provoked on *distinct instances* of the
// offending classes with no real contention, so the underlying std
// primitives never actually deadlock — the validator works on the
// class-dependency graph, which is exactly the point: the bug is reported
// from any interleaving, not just the racy one.
#include "src/analysis/lockdep.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "src/kernel/kernel.h"

namespace cntr::analysis {
namespace {

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = LockdepEnabled();
    SetLockdepEnabled(true);
    LockdepResetForTest();
    SetLockdepReportHandler([this](const LockdepReport& r) {
      std::lock_guard<std::mutex> lock(reports_mu_);
      reports_.push_back(r);
    });
  }

  void TearDown() override {
    SetLockdepReportHandler(nullptr);
    LockdepResetForTest();
    SetLockdepEnabled(was_enabled_);
  }

  size_t ReportCount() {
    std::lock_guard<std::mutex> lock(reports_mu_);
    return reports_.size();
  }
  LockdepReport Report(size_t i) {
    std::lock_guard<std::mutex> lock(reports_mu_);
    return reports_.at(i);
  }

  std::mutex reports_mu_;
  std::vector<LockdepReport> reports_;
  bool was_enabled_ = false;
};

TEST_F(LockdepTest, AbBaInversionDetectedWithBothStacks) {
  CheckedMutex a("test.lockdep.a");
  CheckedMutex b("test.lockdep.b");

  // Establish A -> B.
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(ReportCount(), 0u);
  EXPECT_EQ(LockdepEdgeCount(), 1u);

  // The inverted order closes the cycle — reported before anything blocks.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();

  ASSERT_EQ(ReportCount(), 1u);
  LockdepReport r = Report(0);
  EXPECT_EQ(r.kind, LockdepReport::Kind::kCycle);
  EXPECT_NE(r.details.find("test.lockdep.a"), std::string::npos);
  EXPECT_NE(r.details.find("test.lockdep.b"), std::string::npos);
  // Two stacks: where the existing A -> B edge was recorded, and the
  // acquisition that closed the cycle.
  EXPECT_NE(r.details.find("first recorded"), std::string::npos);
  EXPECT_NE(r.details.find("closing edge"), std::string::npos);
}

TEST_F(LockdepTest, InversionAcrossThreadsDetected) {
  CheckedMutex a("test.lockdep.xthread.a");
  CheckedMutex b("test.lockdep.xthread.b");

  std::thread t1([&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  });
  t1.join();

  std::thread t2([&] {
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  });
  t2.join();

  EXPECT_EQ(ReportCount(), 1u);
}

TEST_F(LockdepTest, EachInversionReportedOnce) {
  CheckedMutex a("test.lockdep.oneshot.a");
  CheckedMutex b("test.lockdep.oneshot.b");

  a.lock();
  b.lock();
  b.unlock();
  a.unlock();

  for (int i = 0; i < 3; ++i) {
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  }
  EXPECT_EQ(ReportCount(), 1u) << "one report per distinct inversion";
}

TEST_F(LockdepTest, ThreeLockCycleDetectedTransitively) {
  CheckedMutex a("test.lockdep.tri.a");
  CheckedMutex b("test.lockdep.tri.b");
  CheckedMutex c("test.lockdep.tri.c");

  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  b.lock();
  c.lock();
  c.unlock();
  b.unlock();
  EXPECT_EQ(ReportCount(), 0u);

  c.lock();
  a.lock();  // closes c -> a with a ~> b ~> c recorded
  a.unlock();
  c.unlock();
  ASSERT_EQ(ReportCount(), 1u);
  EXPECT_GE(Report(0).cycle_nodes.size(), 3u);
}

TEST_F(LockdepTest, CondVarWaitNotifyCycleDetected) {
  // The PR-2 shape: a waiter parks on a condvar while still holding an
  // unrelated lock; the only notify path needs that same lock.
  CheckedMutex guard("test.lockdep.cv.guard");
  CheckedMutex m("test.lockdep.cv.m");
  CheckedCondVar cv("test.lockdep.cv.cv");

  // Waiter records guard -> cv (times out immediately; no real partner).
  guard.lock();
  {
    std::unique_lock<CheckedMutex> lk(m);
    cv.wait_for(lk, std::chrono::microseconds(1));
  }
  guard.unlock();
  EXPECT_EQ(ReportCount(), 0u);

  // Notifier holding the same guard closes the cycle cv -> guard -> cv.
  guard.lock();
  cv.notify_one();
  guard.unlock();

  ASSERT_EQ(ReportCount(), 1u);
  EXPECT_EQ(Report(0).kind, LockdepReport::Kind::kCycle);
  EXPECT_NE(Report(0).details.find("test.lockdep.cv.cv"), std::string::npos);
  EXPECT_NE(Report(0).details.find("test.lockdep.cv.guard"), std::string::npos);
}

TEST_F(LockdepTest, NotifyUnderOwnMutexIsNotACycle) {
  // Notify-under-the-associated-mutex is legal (just mildly inefficient):
  // the waiter RELEASES that mutex while parked, so no wait-for edge exists
  // from the waiter side.
  CheckedMutex m("test.lockdep.cvok.m");
  CheckedCondVar cv("test.lockdep.cvok.cv");

  {
    std::unique_lock<CheckedMutex> lk(m);
    cv.wait_for(lk, std::chrono::microseconds(1));
  }
  m.lock();
  cv.notify_all();
  m.unlock();
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, SharedLockReadRecursionAllowed) {
  // Two stripes of one reader-heavy class taken shared concurrently-ish:
  // readers do not exclude readers, so same-class read nesting is legal.
  CheckedSharedMutex s1("test.lockdep.shared.rw");
  CheckedSharedMutex s2("test.lockdep.shared.rw");

  s1.lock_shared();
  s2.lock_shared();
  s2.unlock_shared();
  s1.unlock_shared();
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, SharedWriteRecursionReported) {
  CheckedSharedMutex s1("test.lockdep.sharedw.rw");
  CheckedSharedMutex s2("test.lockdep.sharedw.rw");

  s1.lock();
  s2.lock();  // exclusive same-class nesting: possible self-deadlock
  s2.unlock();
  s1.unlock();
  ASSERT_EQ(ReportCount(), 1u);
  EXPECT_EQ(Report(0).kind, LockdepReport::Kind::kRecursion);
}

TEST_F(LockdepTest, ReadUnderWriteSameClassReported) {
  CheckedSharedMutex s1("test.lockdep.sharedrw.rw");
  CheckedSharedMutex s2("test.lockdep.sharedrw.rw");

  s1.lock();
  s2.lock_shared();  // a queued writer between the two would deadlock this
  s2.unlock_shared();
  s1.unlock();
  EXPECT_EQ(ReportCount(), 1u);
}

TEST_F(LockdepTest, MutexSameClassRecursionReported) {
  CheckedMutex m1("test.lockdep.rec.m");
  CheckedMutex m2("test.lockdep.rec.m");

  m1.lock();
  m2.lock();
  m2.unlock();
  m1.unlock();
  ASSERT_EQ(ReportCount(), 1u);
  EXPECT_EQ(Report(0).kind, LockdepReport::Kind::kRecursion);
  EXPECT_NE(Report(0).details.find("recursive"), std::string::npos);
}

TEST_F(LockdepTest, StripedSubclassOrderedNestingAllowed) {
  // The lock_nested analogue: each stripe of a sharded table declares its
  // index as a subclass, so index-ordered nesting is distinct graph nodes
  // in a consistent order — legal.
  CheckedMutex s0("test.lockdep.stripe.shard", 0);
  CheckedMutex s1("test.lockdep.stripe.shard", 1);
  CheckedMutex s2("test.lockdep.stripe.shard", 2);

  for (int i = 0; i < 2; ++i) {
    s0.lock();
    s1.lock();
    s2.lock();
    s2.unlock();
    s1.unlock();
    s0.unlock();
  }
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, StripedSubclassOutOfOrderNestingReported) {
  CheckedMutex s0("test.lockdep.stripebad.shard", 0);
  CheckedMutex s1("test.lockdep.stripebad.shard", 1);

  s0.lock();
  s1.lock();
  s1.unlock();
  s0.unlock();

  s1.lock();
  s0.lock();  // inverted stripe order: reported like any other inversion
  s0.unlock();
  s1.unlock();
  EXPECT_EQ(ReportCount(), 1u);
}

TEST_F(LockdepTest, SetSubclassBeforeUseRebindsNode) {
  // Striped containers default-construct their elements and stamp the
  // stripe index afterwards (std::vector<Shard> can't pass constructor
  // args); both orders must name distinct nodes.
  CheckedMutex a("test.lockdep.setsub.shard");
  CheckedMutex b("test.lockdep.setsub.shard");
  a.set_subclass(1);
  b.set_subclass(2);

  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, LockNestedReleasesExactlyTheSubclassNode) {
  // The memfs rename idiom: several same-class inodes held at once, each
  // acquisition naming its role via lock_nested. Release must pop exactly
  // the node the acquisition pushed — if unlocking the nested child popped
  // the base parent's entry instead, the second child acquisition below
  // would see its node still "held" and report a false recursion.
  CheckedMutex parent("test.lockdep.nested.inode");
  CheckedMutex child_a("test.lockdep.nested.inode");
  CheckedMutex child_b("test.lockdep.nested.inode");

  parent.lock();
  child_a.lock_nested(2);
  child_a.unlock();
  child_b.lock_nested(2);  // same subclass again: legal, node was released
  child_b.unlock();
  parent.unlock();
  EXPECT_EQ(ReportCount(), 0u);

  // Full rename shape: base parent -> second parent (1) -> child (2),
  // repeated to confirm the recorded edges stay acyclic.
  CheckedMutex second("test.lockdep.nested.inode");
  for (int i = 0; i < 2; ++i) {
    parent.lock();
    second.lock_nested(1);
    child_a.lock_nested(2);
    child_a.unlock();
    second.unlock();
    parent.unlock();
  }
  EXPECT_EQ(ReportCount(), 0u);

  // Inverting the declared hierarchy is still an inversion.
  child_a.lock_nested(2);
  second.lock_nested(1);
  second.unlock();
  child_a.unlock();
  EXPECT_EQ(ReportCount(), 1u);
}

TEST_F(LockdepTest, TryLockAddsNoEdges) {
  // try_lock can't block, so it neither cycle-checks nor records
  // dependencies — the std::scoped_lock avoidance dance stays clean.
  CheckedMutex a("test.lockdep.try.a");
  CheckedMutex b("test.lockdep.try.b");

  a.lock();
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  a.unlock();
  EXPECT_EQ(LockdepEdgeCount(), 0u);
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, ScopedLockTwoInstancesSameClassClean) {
  // std::scoped_lock over two same-class instances (Process::Merge idiom):
  // the std::lock algorithm's blocking acquisitions happen with none of the
  // set held, the rest are trylocks — no recursion false positive.
  CheckedMutex m1("test.lockdep.scoped.m");
  CheckedMutex m2("test.lockdep.scoped.m");
  {
    std::scoped_lock lock(m1, m2);
  }
  EXPECT_EQ(ReportCount(), 0u);
}

TEST_F(LockdepTest, GateOffIsPassthrough) {
  SetLockdepEnabled(false);
  CheckedMutex a("test.lockdep.off.a");
  CheckedMutex b("test.lockdep.off.b");

  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();

  EXPECT_EQ(ReportCount(), 0u);
  EXPECT_EQ(LockdepEdgeCount(), 0u);
  EXPECT_EQ(LockdepReportCount(), 0u);
}

TEST_F(LockdepTest, GateOffVirtualTimeBitIdentity) {
  // The validator never reads or advances SimClock: a lock-heavy kernel
  // workload (pipe ping-pong through the dcache'd VFS) must accrue exactly
  // the same virtual time armed and disarmed. This is the unit-level slice
  // of the bench panels' bit-identity guarantee.
  auto run = [](bool armed) -> uint64_t {
    SetLockdepEnabled(armed);
    auto kernel = kernel::Kernel::Create();
    auto proc = kernel->Fork(*kernel->init(), "lockdep-bitident");
    auto pipe = kernel->Pipe(*proc);
    EXPECT_TRUE(pipe.ok());
    auto [rfd, wfd] = pipe.value();
    char buf[256];
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(kernel->Write(*proc, wfd, buf, sizeof(buf)).ok());
      EXPECT_TRUE(kernel->Read(*proc, rfd, buf, sizeof(buf)).ok());
    }
    return kernel->clock().NowNs();
  };

  const uint64_t with_lockdep = run(true);
  const uint64_t without = run(false);
  EXPECT_EQ(with_lockdep, without);
}

TEST_F(LockdepTest, ResetClearsGraphAndReports) {
  CheckedMutex a("test.lockdep.reset.a");
  CheckedMutex b("test.lockdep.reset.b");
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(LockdepEdgeCount(), 1u);

  LockdepResetForTest();
  EXPECT_EQ(LockdepEdgeCount(), 0u);
  EXPECT_EQ(LockdepReportCount(), 0u);

  // The same order revalidates cleanly from scratch.
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  EXPECT_EQ(ReportCount(), 0u);
}

}  // namespace
}  // namespace cntr::analysis
