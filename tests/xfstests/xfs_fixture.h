// Fixture for the xfstests generic-group port (paper §5.1).
//
// Methodology mirrors the paper: CntrFS is mounted on top of tmpfs and the
// generic tests run against the mount. 90 of the 94 tests must pass; the
// four documented failures (#228, #375, #391, #426) assert the *deviation*,
// exactly as the paper reports it.
#ifndef CNTR_TESTS_XFSTESTS_XFS_FIXTURE_H_
#define CNTR_TESTS_XFSTESTS_XFS_FIXTURE_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/cntrfs.h"
#include "src/fuse/fuse_mount.h"
#include "src/fuse/fuse_server.h"
#include "src/kernel/kernel.h"

namespace cntr::xfstests {

class XfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    fuse::RegisterFuseDevice(kernel_.get());

    // Scratch tmpfs, the filesystem under test's backing store.
    auto scratch = kernel::MakeTmpFs(kernel_->AllocDevId(), &kernel_->clock(),
                                     &kernel_->costs());
    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/scratch", 0777).ok());
    ASSERT_TRUE(kernel_->MountFs(*kernel_->init(), scratch, "/scratch").ok());

    // CntrFS server over the host view (its own ns clone, so the FUSE
    // mount below is invisible to it).
    server_proc_ = kernel_->Fork(*kernel_->init(), "cntrfs");
    ASSERT_TRUE(kernel_->Unshare(*server_proc_, kernel::kCloneNewNs).ok());
    auto server = core::CntrFsServer::Create(kernel_.get(), server_proc_, "/");
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    cntrfs_ = std::move(server).value();

    auto dev = fuse::OpenFuseDevice(kernel_.get(), *kernel_->init());
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    fuse_server_ = std::make_unique<fuse::FuseServer>(dev->second, cntrfs_.get(), 2);
    fuse_server_->Start();

    ASSERT_TRUE(kernel_->Mkdir(*kernel_->init(), "/mnt", 0755).ok());
    auto mounted = fuse::MountFuse(kernel_.get(), *kernel_->init(), "/mnt", dev->second,
                                   fuse::FuseMountOptions::Optimized());
    ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
    fuse_fs_ = std::move(mounted).value();

    proc_ = kernel_->Fork(*kernel_->init(), "xfstest");
  }

  void TearDown() override {
    if (fuse_fs_ != nullptr) {
      fuse_fs_->Shutdown();
    }
    if (fuse_server_ != nullptr) {
      fuse_server_->Stop();
    }
  }

  // Test directory on the CntrFS mount, backed by the scratch tmpfs.
  std::string P(const std::string& rel) { return "/mnt/scratch/" + rel; }

  kernel::Kernel& k() { return *kernel_; }
  kernel::Process& proc() { return *proc_; }

  Status WriteFile(const std::string& path, const std::string& content,
                   kernel::Mode mode = 0644) {
    CNTR_ASSIGN_OR_RETURN(kernel::Fd fd,
                          kernel_->Open(*proc_, path,
                                        kernel::kOWrOnly | kernel::kOCreat | kernel::kOTrunc,
                                        mode));
    Status st = kernel_->Write(*proc_, fd, content.data(), content.size()).status();
    Status closed = kernel_->Close(*proc_, fd);
    return st.ok() ? closed : st;
  }

  std::string ReadFile(const std::string& path) {
    auto fd = kernel_->Open(*proc_, path, kernel::kORdOnly);
    if (!fd.ok()) {
      return "<open failed: " + fd.status().ToString() + ">";
    }
    std::string out;
    char buf[4096];
    while (true) {
      auto n = kernel_->Read(*proc_, fd.value(), buf, sizeof(buf));
      if (!n.ok() || n.value() == 0) {
        break;
      }
      out.append(buf, n.value());
    }
    (void)kernel_->Close(*proc_, fd.value());
    return out;
  }

  StatusOr<kernel::InodeAttr> StatP(const std::string& path) {
    return kernel_->Stat(*proc_, path);
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  kernel::ProcessPtr server_proc_;
  kernel::ProcessPtr proc_;
  std::unique_ptr<core::CntrFsServer> cntrfs_;
  std::unique_ptr<fuse::FuseServer> fuse_server_;
  std::shared_ptr<fuse::FuseFs> fuse_fs_;
};

}  // namespace cntr::xfstests

#endif  // CNTR_TESTS_XFSTESTS_XFS_FIXTURE_H_
