// xfstests generic group, part 1: file creation, I/O semantics, offsets,
// truncation, holes, append — all through CntrFS over tmpfs.
#include "tests/xfstests/xfs_fixture.h"

namespace cntr::xfstests {
namespace {

using kernel::Fd;
using kernel::InodeAttr;

// --- creation & open semantics ---

TEST_F(XfsTest, G001_CreateWriteReadBack) {
  ASSERT_TRUE(WriteFile(P("f"), "hello").ok());
  EXPECT_EQ(ReadFile(P("f")), "hello");
}

TEST_F(XfsTest, G002_CreateSetsRequestedMode) {
  ASSERT_TRUE(WriteFile(P("f"), "x", 0640).ok());
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode & kernel::kPermMask, 0640u);
}

TEST_F(XfsTest, G003_OpenMissingFileFailsEnoent) {
  EXPECT_EQ(k().Open(proc(), P("missing"), kernel::kORdOnly).error(), ENOENT);
}

TEST_F(XfsTest, G004_OpenCreatExclOnExistingFailsEexist) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat | kernel::kOExcl)
                .error(),
            EEXIST);
}

TEST_F(XfsTest, G005_OpenTruncEmptiesFile) {
  ASSERT_TRUE(WriteFile(P("f"), "content").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOTrunc);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 0u);
}

TEST_F(XfsTest, G006_OpenDirectoryForWriteFailsEisdir) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Open(proc(), P("d"), kernel::kOWrOnly).error(), EISDIR);
}

TEST_F(XfsTest, G007_ODirectoryOnFileFailsEnotdir) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Open(proc(), P("f"), kernel::kORdOnly | kernel::kODirectory).error(), ENOTDIR);
}

TEST_F(XfsTest, G008_ReadFromWriteOnlyFdFailsEbadf) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly);
  ASSERT_TRUE(fd.ok());
  char buf[8];
  EXPECT_EQ(k().Read(proc(), fd.value(), buf, sizeof(buf)).error(), EBADF);
}

TEST_F(XfsTest, G009_WriteToReadOnlyFdFailsEbadf) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k().Write(proc(), fd.value(), "y", 1).error(), EBADF);
}

TEST_F(XfsTest, G010_PathWithTrailingComponentsOnFileFailsEnotdir) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Open(proc(), P("f/sub"), kernel::kORdOnly).error(), ENOTDIR);
}

// --- read/write semantics ---

TEST_F(XfsTest, G011_ShortReadAtEof) {
  ASSERT_TRUE(WriteFile(P("f"), "12345").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  char buf[100];
  auto n = k().Read(proc(), fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 5u);
  n = k().Read(proc(), fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);  // EOF
}

TEST_F(XfsTest, G012_SequentialWritesAdvanceOffset) {
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "abc", 3).ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "def", 3).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("f")), "abcdef");
}

TEST_F(XfsTest, G013_PreadDoesNotMoveOffset) {
  ASSERT_TRUE(WriteFile(P("f"), "abcdef").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  char buf[3];
  ASSERT_TRUE(k().Pread(proc(), fd.value(), buf, 3, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "def");
  auto n = k().Read(proc(), fd.value(), buf, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 3), "abc");  // cursor still at 0
}

TEST_F(XfsTest, G014_PwriteAtOffsetLeavesPrefix) {
  ASSERT_TRUE(WriteFile(P("f"), "aaaaaa").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "ZZ", 2, 2).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("f")), "aaZZaa");
}

TEST_F(XfsTest, G015_OverwriteMiddleOfMultiPageFile) {
  std::string big(3 * 4096, 'a');
  ASSERT_TRUE(WriteFile(P("f"), big).ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "MID", 3, 4096 + 100).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  std::string content = ReadFile(P("f"));
  EXPECT_EQ(content.substr(4096 + 100, 3), "MID");
  EXPECT_EQ(content[4096 + 99], 'a');
  EXPECT_EQ(content[4096 + 103], 'a');
}

TEST_F(XfsTest, G016_WriteAcrossPageBoundary) {
  std::string data(4090, 'x');
  ASSERT_TRUE(WriteFile(P("f"), data).ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "0123456789", 10, 4090).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  std::string content = ReadFile(P("f"));
  ASSERT_EQ(content.size(), 4100u);
  EXPECT_EQ(content.substr(4090), "0123456789");
}

TEST_F(XfsTest, G017_ZeroLengthWriteIsNoop) {
  ASSERT_TRUE(WriteFile(P("f"), "abc").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  auto n = k().Write(proc(), fd.value(), "", 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  EXPECT_EQ(ReadFile(P("f")), "abc");
}

TEST_F(XfsTest, G018_LargeFileRoundTrip) {
  std::string big(256 * 1024, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 23));
  }
  ASSERT_TRUE(WriteFile(P("big"), big).ok());
  EXPECT_EQ(ReadFile(P("big")), big);
}

TEST_F(XfsTest, G020_SizeTracksLargestWrite) {
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "x", 1, 9999).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 10000u);
}

// --- lseek ---

TEST_F(XfsTest, G021_LseekSetCurEnd) {
  ASSERT_TRUE(WriteFile(P("f"), "0123456789").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  auto pos = k().Lseek(proc(), fd.value(), 4, kernel::kSeekSet);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 4u);
  pos = k().Lseek(proc(), fd.value(), 2, kernel::kSeekCur);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 6u);
  pos = k().Lseek(proc(), fd.value(), -1, kernel::kSeekEnd);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value(), 9u);
}

TEST_F(XfsTest, G022_LseekBeforeStartFailsEinval) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k().Lseek(proc(), fd.value(), -5, kernel::kSeekSet).error(), EINVAL);
}

TEST_F(XfsTest, G023_LseekPastEofThenWriteCreatesHole) {
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Lseek(proc(), fd.value(), 8192, kernel::kSeekSet).ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "tail", 4).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  std::string content = ReadFile(P("f"));
  ASSERT_EQ(content.size(), 8196u);
  EXPECT_EQ(content[0], '\0');
  EXPECT_EQ(content[8191], '\0');
  EXPECT_EQ(content.substr(8192), "tail");
}

// --- append mode ---

TEST_F(XfsTest, G024_AppendAlwaysWritesAtEof) {
  ASSERT_TRUE(WriteFile(P("f"), "base").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "+1", 2).ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "+2", 2).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("f")), "base+1+2");
}

TEST_F(XfsTest, G025_AppendIgnoresSeeks) {
  ASSERT_TRUE(WriteFile(P("f"), "base").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Lseek(proc(), fd.value(), 0, kernel::kSeekSet).ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "X", 1).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("f")), "baseX");
}

TEST_F(XfsTest, G026_TwoAppendersInterleaveWithoutClobbering) {
  ASSERT_TRUE(WriteFile(P("log"), "").ok());
  auto a = k().Open(proc(), P("log"), kernel::kOWrOnly | kernel::kOAppend);
  auto b = k().Open(proc(), P("log"), kernel::kOWrOnly | kernel::kOAppend);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(k().Write(proc(), a.value(), "A1;", 3).ok());
  ASSERT_TRUE(k().Write(proc(), b.value(), "B1;", 3).ok());
  ASSERT_TRUE(k().Write(proc(), a.value(), "A2;", 3).ok());
  EXPECT_EQ(ReadFile(P("log")), "A1;B1;A2;");
}

// --- truncate & holes ---

TEST_F(XfsTest, G027_TruncateShrinks) {
  ASSERT_TRUE(WriteFile(P("f"), "0123456789").ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 4).ok());
  EXPECT_EQ(ReadFile(P("f")), "0123");
}

TEST_F(XfsTest, G028_TruncateExtendsWithZeros) {
  ASSERT_TRUE(WriteFile(P("f"), "ab").ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 6).ok());
  std::string content = ReadFile(P("f"));
  ASSERT_EQ(content.size(), 6u);
  EXPECT_EQ(content.substr(0, 2), "ab");
  EXPECT_EQ(content[5], '\0');
}

TEST_F(XfsTest, G029_TruncateShrinkThenExtendZeroesOldData) {
  ASSERT_TRUE(WriteFile(P("f"), "XXXXXXXX").ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 2).ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 8).ok());
  std::string content = ReadFile(P("f"));
  ASSERT_EQ(content.size(), 8u);
  EXPECT_EQ(content.substr(0, 2), "XX");
  for (size_t i = 2; i < 8; ++i) {
    EXPECT_EQ(content[i], '\0') << i;
  }
}

TEST_F(XfsTest, G030_TruncateAcrossPageBoundaryZeroesTail) {
  std::string data(8192, 'y');
  ASSERT_TRUE(WriteFile(P("f"), data).ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 4096 + 10).ok());
  ASSERT_TRUE(k().Truncate(proc(), P("f"), 8192).ok());
  std::string content = ReadFile(P("f"));
  EXPECT_EQ(content[4096 + 9], 'y');
  EXPECT_EQ(content[4096 + 10], '\0');
  EXPECT_EQ(content[8191], '\0');
}

TEST_F(XfsTest, G031_FtruncateRequiresWritableFd) {
  ASSERT_TRUE(WriteFile(P("f"), "data").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(k().Ftruncate(proc(), fd.value(), 0).error(), EINVAL);
}

TEST_F(XfsTest, G032_TruncateDirectoryFailsEisdir) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Truncate(proc(), P("d"), 0).error(), EISDIR);
}

TEST_F(XfsTest, G033_HoleReadsAsZeros) {
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "end", 3, 100000).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  std::string content = ReadFile(P("f"));
  ASSERT_EQ(content.size(), 100003u);
  EXPECT_EQ(content[0], '\0');
  EXPECT_EQ(content[50000], '\0');
  EXPECT_EQ(content.substr(100000), "end");
}

// --- fsync & durability ---

TEST_F(XfsTest, G034_FsyncSucceedsOnRegularFile) {
  ASSERT_TRUE(WriteFile(P("f"), "durable").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "!", 1).ok());
  EXPECT_TRUE(k().Fsync(proc(), fd.value()).ok());
  EXPECT_TRUE(k().Fsync(proc(), fd.value(), /*datasync=*/true).ok());
}

TEST_F(XfsTest, G035_DataVisibleAfterFsyncAndCacheDrop) {
  auto fd = k().Open(proc(), P("f"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Write(proc(), fd.value(), "synced", 6).ok());
  ASSERT_TRUE(k().Fsync(proc(), fd.value()).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  k().dcache().Clear();
  k().page_cache().DropAllClean();
  EXPECT_EQ(ReadFile(P("f")), "synced");
}

// --- stat coherence ---

TEST_F(XfsTest, G036_StatReportsTypeAndSize) {
  ASSERT_TRUE(WriteFile(P("f"), "12345").ok());
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(kernel::IsReg(attr->mode));
  EXPECT_EQ(attr->size, 5u);
  EXPECT_EQ(attr->nlink, 1u);
}

TEST_F(XfsTest, G037_FstatMatchesStat) {
  ASSERT_TRUE(WriteFile(P("f"), "12345").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  auto fstat = k().Fstat(proc(), fd.value());
  auto stat = StatP(P("f"));
  ASSERT_TRUE(fstat.ok() && stat.ok());
  EXPECT_EQ(fstat->ino, stat->ino);
  EXPECT_EQ(fstat->size, stat->size);
}

TEST_F(XfsTest, G038_MtimeAdvancesOnWrite) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto before = StatP(P("f"));
  ASSERT_TRUE(before.ok());
  k().clock().Advance(2'000'000'000);  // 2 virtual seconds
  auto fd = k().Open(proc(), P("f"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "y", 1, 0).ok());
  ASSERT_TRUE(k().Fsync(proc(), fd.value()).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  k().clock().Advance(2'000'000'000);  // let the attr cache expire
  auto after = StatP(P("f"));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->mtime.ToNs(), before->mtime.ToNs());
}

TEST_F(XfsTest, G039_InoStableAcrossLookups) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto a = StatP(P("f"));
  k().dcache().Clear();
  auto b = StatP(P("f"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ino, b->ino);
}

TEST_F(XfsTest, G040_UtimensSetsTimes) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  kernel::Timespec atime{1000, 0};
  kernel::Timespec mtime{2000, 0};
  ASSERT_TRUE(k().Utimens(proc(), P("f"), atime, mtime).ok());
  k().clock().Advance(2'000'000'000);
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->atime.sec, 1000u);
  EXPECT_EQ(attr->mtime.sec, 2000u);
}

// --- dup & offsets shared ---

TEST_F(XfsTest, G041_DupSharesFileOffset) {
  ASSERT_TRUE(WriteFile(P("f"), "abcdef").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  auto dup = k().Dup(proc(), fd.value());
  ASSERT_TRUE(dup.ok());
  char buf[2];
  ASSERT_TRUE(k().Read(proc(), fd.value(), buf, 2).ok());
  ASSERT_TRUE(k().Read(proc(), dup.value(), buf, 2).ok());
  EXPECT_EQ(std::string(buf, 2), "cd");
}

TEST_F(XfsTest, G042_CloseInvalidFdFailsEbadf) {
  EXPECT_EQ(k().Close(proc(), 12345).error(), EBADF);
}

TEST_F(XfsTest, G043_IndependentOpensHaveIndependentOffsets) {
  ASSERT_TRUE(WriteFile(P("f"), "abcdef").ok());
  auto a = k().Open(proc(), P("f"), kernel::kORdOnly);
  auto b = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(a.ok() && b.ok());
  char buf[3];
  ASSERT_TRUE(k().Read(proc(), a.value(), buf, 3).ok());
  auto n = k().Read(proc(), b.value(), buf, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
}

// --- cross-process visibility (the nested-namespace use case) ---

TEST_F(XfsTest, G044_WritesVisibleToOtherProcesses) {
  ASSERT_TRUE(WriteFile(P("f"), "shared").ok());
  auto other = k().Fork(proc(), "other");
  auto fd = k().Open(*other, P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  char buf[16];
  auto n = k().Read(*other, fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "shared");
}

TEST_F(XfsTest, G045_UnderlyingTmpfsSeesFuseWrites) {
  // What lands through the mount must exist on the backing tmpfs.
  ASSERT_TRUE(WriteFile(P("f"), "through-fuse").ok());
  auto fd = k().Open(*kernel_->init(), "/scratch/f", kernel::kORdOnly);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  char buf[32];
  auto n = k().Read(*kernel_->init(), fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "through-fuse");
}

TEST_F(XfsTest, G046_FuseSeesUnderlyingTmpfsWrites) {
  auto fd = k().Open(*kernel_->init(), "/scratch/native",
                     kernel::kOWrOnly | kernel::kOCreat, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Write(*kernel_->init(), fd.value(), "from-below", 10).ok());
  ASSERT_TRUE(k().Close(*kernel_->init(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("native")), "from-below");
}

}  // namespace
}  // namespace cntr::xfstests
