// xfstests generic group, part 2: directories, links, renames, xattrs,
// permissions, statfs — plus the four documented failures the paper reports
// (#228, #375, #391, #426), asserted as deviations.
#include "tests/xfstests/xfs_fixture.h"

namespace cntr::xfstests {
namespace {

using kernel::Fd;

// --- directories ---

TEST_F(XfsTest, G047_MkdirCreatesEmptyDirectory) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d"), 0750).ok());
  auto attr = StatP(P("d"));
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(kernel::IsDir(attr->mode));
  EXPECT_EQ(attr->mode & kernel::kPermMask, 0750u);
}

TEST_F(XfsTest, G048_MkdirExistingFailsEexist) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Mkdir(proc(), P("d")).error(), EEXIST);
}

TEST_F(XfsTest, G049_MkdirUnderFileFailsEnotdir) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Mkdir(proc(), P("f/sub")).error(), ENOTDIR);
}

TEST_F(XfsTest, G050_RmdirRemovesEmptyDirectory) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(k().Rmdir(proc(), P("d")).ok());
  EXPECT_EQ(StatP(P("d")).error(), ENOENT);
}

TEST_F(XfsTest, G051_RmdirNonEmptyFailsEnotempty) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("d/f"), "x").ok());
  EXPECT_EQ(k().Rmdir(proc(), P("d")).error(), ENOTEMPTY);
}

TEST_F(XfsTest, G052_RmdirOnFileFailsEnotdir) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Rmdir(proc(), P("f")).error(), ENOTDIR);
}

TEST_F(XfsTest, G053_UnlinkOnDirectoryFailsEisdir) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Unlink(proc(), P("d")).error(), EISDIR);
}

TEST_F(XfsTest, G054_GetdentsListsAllEntriesWithTypes) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("d/file"), "x").ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("d/sub")).ok());
  ASSERT_TRUE(k().Symlink(proc(), "file", P("d/link")).ok());
  auto fd = k().Open(proc(), P("d"), kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(fd.ok());
  auto entries = k().Getdents(proc(), fd.value());
  ASSERT_TRUE(entries.ok());
  bool saw_file = false;
  bool saw_sub = false;
  bool saw_link = false;
  for (const auto& e : entries.value()) {
    if (e.name == "file") {
      saw_file = true;
      EXPECT_EQ(e.type, kernel::DType::kReg);
    } else if (e.name == "sub") {
      saw_sub = true;
      EXPECT_EQ(e.type, kernel::DType::kDir);
    } else if (e.name == "link") {
      saw_link = true;
      EXPECT_EQ(e.type, kernel::DType::kLnk);
    }
  }
  EXPECT_TRUE(saw_file && saw_sub && saw_link);
}

TEST_F(XfsTest, G055_DeepDirectoryHierarchy) {
  std::string path = P("a");
  for (int depth = 0; depth < 12; ++depth) {
    ASSERT_TRUE(k().Mkdir(proc(), path).ok()) << path;
    path += "/a";
  }
  ASSERT_TRUE(WriteFile(path, "deep").ok());
  EXPECT_EQ(ReadFile(path), "deep");
}

TEST_F(XfsTest, G056_DotAndDotDotResolve) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("d/f"), "dot").ok());
  EXPECT_EQ(ReadFile(P("d/./f")), "dot");
  EXPECT_EQ(ReadFile(P("d/../d/f")), "dot");
}

TEST_F(XfsTest, G057_ManyEntriesInOneDirectory) {
  ASSERT_TRUE(k().Mkdir(proc(), P("big")).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(WriteFile(P("big/f" + std::to_string(i)), "x").ok());
  }
  auto fd = k().Open(proc(), P("big"), kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(fd.ok());
  auto entries = k().Getdents(proc(), fd.value());
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 202u);  // 200 + . + ..
}

TEST_F(XfsTest, G058_DirNlinkCountsSubdirs) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("d/s1")).ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("d/s2")).ok());
  k().clock().Advance(2'000'000'000);  // expire the attr cache
  auto attr = StatP(P("d"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 4u);  // ., .., s1, s2
  ASSERT_TRUE(k().Rmdir(proc(), P("d/s1")).ok());
  k().clock().Advance(2'000'000'000);  // expire the attr cache
  attr = StatP(P("d"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 3u);
}

// --- hard links ---

TEST_F(XfsTest, G059_HardlinkSharesInode) {
  ASSERT_TRUE(WriteFile(P("f"), "data").ok());
  ASSERT_TRUE(k().Link(proc(), P("f"), P("l")).ok());
  k().clock().Advance(2'000'000'000);  // expire the attr cache
  auto a = StatP(P("f"));
  auto b = StatP(P("l"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ino, b->ino);
  EXPECT_EQ(b->nlink, 2u);
}

TEST_F(XfsTest, G060_HardlinkWritesVisibleThroughBothNames) {
  ASSERT_TRUE(WriteFile(P("f"), "old").ok());
  ASSERT_TRUE(k().Link(proc(), P("f"), P("l")).ok());
  ASSERT_TRUE(WriteFile(P("l"), "new").ok());
  EXPECT_EQ(ReadFile(P("f")), "new");
}

TEST_F(XfsTest, G061_UnlinkOneNameKeepsData) {
  ASSERT_TRUE(WriteFile(P("f"), "kept").ok());
  ASSERT_TRUE(k().Link(proc(), P("f"), P("l")).ok());
  ASSERT_TRUE(k().Unlink(proc(), P("f")).ok());
  k().clock().Advance(2'000'000'000);
  EXPECT_EQ(ReadFile(P("l")), "kept");
  auto attr = StatP(P("l"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 1u);
}

TEST_F(XfsTest, G062_HardlinkToDirectoryFailsEperm) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Link(proc(), P("d"), P("dl")).error(), EPERM);
}

TEST_F(XfsTest, G063_HardlinkDedupAcrossLookups) {
  // The CntrFS (dev, ino) table must map both names to one FUSE inode.
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().Link(proc(), P("f"), P("l")).ok());
  k().dcache().Clear();
  auto a = k().Resolve(proc(), P("f"));
  auto b = k().Resolve(proc(), P("l"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->inode.get(), b->inode.get()) << "hardlinks must share the kernel inode object";
}

// --- symlinks ---

TEST_F(XfsTest, G064_SymlinkReadlinkRoundTrip) {
  ASSERT_TRUE(k().Symlink(proc(), "/mnt/scratch/target", P("ln")).ok());
  auto target = k().Readlink(proc(), P("ln"));
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(target.value(), "/mnt/scratch/target");
}

TEST_F(XfsTest, G065_SymlinkFollowedOnOpen) {
  ASSERT_TRUE(WriteFile(P("target"), "via link").ok());
  ASSERT_TRUE(k().Symlink(proc(), "target", P("ln")).ok());
  EXPECT_EQ(ReadFile(P("ln")), "via link");
}

TEST_F(XfsTest, G066_DanglingSymlinkOpenFailsEnoent) {
  ASSERT_TRUE(k().Symlink(proc(), "nowhere", P("ln")).ok());
  EXPECT_EQ(k().Open(proc(), P("ln"), kernel::kORdOnly).error(), ENOENT);
}

TEST_F(XfsTest, G067_NofollowOnSymlinkFailsEloop) {
  ASSERT_TRUE(WriteFile(P("target"), "x").ok());
  ASSERT_TRUE(k().Symlink(proc(), "target", P("ln")).ok());
  EXPECT_EQ(k().Open(proc(), P("ln"), kernel::kORdOnly | kernel::kONofollow).error(), ELOOP);
}

TEST_F(XfsTest, G068_LstatShowsLinkItself) {
  ASSERT_TRUE(WriteFile(P("target"), "x").ok());
  ASSERT_TRUE(k().Symlink(proc(), "target", P("ln")).ok());
  auto lst = k().Lstat(proc(), P("ln"));
  ASSERT_TRUE(lst.ok());
  EXPECT_TRUE(kernel::IsLnk(lst->mode));
  auto st = StatP(P("ln"));
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(kernel::IsReg(st->mode));
}

TEST_F(XfsTest, G069_SymlinkChainsResolve) {
  ASSERT_TRUE(WriteFile(P("real"), "end").ok());
  ASSERT_TRUE(k().Symlink(proc(), "real", P("l1")).ok());
  ASSERT_TRUE(k().Symlink(proc(), "l1", P("l2")).ok());
  ASSERT_TRUE(k().Symlink(proc(), "l2", P("l3")).ok());
  EXPECT_EQ(ReadFile(P("l3")), "end");
}

TEST_F(XfsTest, G070_SymlinkLoopFailsEloop) {
  ASSERT_TRUE(k().Symlink(proc(), P("b"), P("a")).ok());
  ASSERT_TRUE(k().Symlink(proc(), P("a"), P("b")).ok());
  EXPECT_EQ(k().Open(proc(), P("a"), kernel::kORdOnly).error(), ELOOP);
}

TEST_F(XfsTest, G071_SymlinkIntoSubdirWithRelativeTarget) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("d/real"), "rel").ok());
  ASSERT_TRUE(k().Symlink(proc(), "d/real", P("ln")).ok());
  EXPECT_EQ(ReadFile(P("ln")), "rel");
}

// --- rename ---

TEST_F(XfsTest, G072_RenameBasic) {
  ASSERT_TRUE(WriteFile(P("a"), "move").ok());
  ASSERT_TRUE(k().Rename(proc(), P("a"), P("b")).ok());
  EXPECT_EQ(StatP(P("a")).error(), ENOENT);
  EXPECT_EQ(ReadFile(P("b")), "move");
}

TEST_F(XfsTest, G073_RenameReplacesExistingFile) {
  ASSERT_TRUE(WriteFile(P("a"), "new").ok());
  ASSERT_TRUE(WriteFile(P("b"), "old").ok());
  ASSERT_TRUE(k().Rename(proc(), P("a"), P("b")).ok());
  EXPECT_EQ(ReadFile(P("b")), "new");
}

TEST_F(XfsTest, G074_RenameAcrossDirectories) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d1")).ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("d2")).ok());
  ASSERT_TRUE(WriteFile(P("d1/f"), "hop").ok());
  ASSERT_TRUE(k().Rename(proc(), P("d1/f"), P("d2/f")).ok());
  EXPECT_EQ(ReadFile(P("d2/f")), "hop");
}

TEST_F(XfsTest, G075_RenameDirectoryUpdatesTree) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("d/f"), "inside").ok());
  ASSERT_TRUE(k().Rename(proc(), P("d"), P("e")).ok());
  EXPECT_EQ(ReadFile(P("e/f")), "inside");
}

TEST_F(XfsTest, G076_RenameDirOverNonEmptyDirFailsEnotempty) {
  ASSERT_TRUE(k().Mkdir(proc(), P("src")).ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("dst")).ok());
  ASSERT_TRUE(WriteFile(P("dst/blocker"), "x").ok());
  EXPECT_EQ(k().Rename(proc(), P("src"), P("dst")).error(), ENOTEMPTY);
}

TEST_F(XfsTest, G077_RenameFileOverDirFailsEisdir) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  EXPECT_EQ(k().Rename(proc(), P("f"), P("d")).error(), EISDIR);
}

TEST_F(XfsTest, G078_RenameDirOverFileFailsEnotdir) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d")).ok());
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  EXPECT_EQ(k().Rename(proc(), P("d"), P("f")).error(), ENOTDIR);
}

TEST_F(XfsTest, G079_RenameMissingSourceFailsEnoent) {
  EXPECT_EQ(k().Rename(proc(), P("ghost"), P("b")).error(), ENOENT);
}

TEST_F(XfsTest, G080_RenameKeepsInodeNumber) {
  ASSERT_TRUE(WriteFile(P("a"), "x").ok());
  auto before = StatP(P("a"));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(k().Rename(proc(), P("a"), P("b")).ok());
  auto after = StatP(P("b"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->ino, after->ino);
}

TEST_F(XfsTest, G081_OpenFdSurvivesRename) {
  ASSERT_TRUE(WriteFile(P("a"), "before").ok());
  auto fd = k().Open(proc(), P("a"), kernel::kORdWr);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Rename(proc(), P("a"), P("b")).ok());
  ASSERT_TRUE(k().Pwrite(proc(), fd.value(), "after.", 6, 0).ok());
  ASSERT_TRUE(k().Close(proc(), fd.value()).ok());
  EXPECT_EQ(ReadFile(P("b")), "after.");
}

TEST_F(XfsTest, G082_OpenFdSurvivesUnlink) {
  // Orphaned-inode semantics: data reachable through the fd after unlink.
  ASSERT_TRUE(WriteFile(P("f"), "orphan").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(k().Unlink(proc(), P("f")).ok());
  char buf[16];
  auto n = k().Read(proc(), fd.value(), buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "orphan");
}

// --- xattrs ---

TEST_F(XfsTest, G083_XattrSetGetRemove) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().SetXattr(proc(), P("f"), "user.tag", "v1").ok());
  auto v = k().GetXattr(proc(), P("f"), "user.tag");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "v1");
  ASSERT_TRUE(k().RemoveXattr(proc(), P("f"), "user.tag").ok());
  EXPECT_EQ(k().GetXattr(proc(), P("f"), "user.tag").error(), ENODATA);
}

TEST_F(XfsTest, G084_XattrListEnumerates) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().SetXattr(proc(), P("f"), "user.a", "1").ok());
  ASSERT_TRUE(k().SetXattr(proc(), P("f"), "user.b", "2").ok());
  auto list = k().ListXattr(proc(), P("f"));
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

TEST_F(XfsTest, G085_XattrCreateFlagRejectsExisting) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().SetXattr(proc(), P("f"), "user.k", "v", kernel::kXattrCreate).ok());
  EXPECT_EQ(k().SetXattr(proc(), P("f"), "user.k", "v2", kernel::kXattrCreate).error(), EEXIST);
  EXPECT_EQ(k().SetXattr(proc(), P("f"), "user.none", "v", kernel::kXattrReplace).error(),
            ENODATA);
}

TEST_F(XfsTest, G086_XattrSurvivesRename) {
  ASSERT_TRUE(WriteFile(P("a"), "x").ok());
  ASSERT_TRUE(k().SetXattr(proc(), P("a"), "user.k", "v").ok());
  ASSERT_TRUE(k().Rename(proc(), P("a"), P("b")).ok());
  auto v = k().GetXattr(proc(), P("b"), "user.k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "v");
}

// --- permissions ---

TEST_F(XfsTest, G087_ChmodChangesPermissions) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  ASSERT_TRUE(k().Chmod(proc(), P("f"), 0400).ok());
  k().clock().Advance(2'000'000'000);
  auto attr = StatP(P("f"));
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode & kernel::kPermMask, 0400u);
}

TEST_F(XfsTest, G088_UnreadableFileDeniedToOtherUser) {
  ASSERT_TRUE(WriteFile(P("f"), "secret").ok());
  ASSERT_TRUE(k().Chmod(proc(), P("f"), 0600).ok());
  auto user = k().Fork(proc(), "user");
  user->creds = kernel::Credentials::User(1000, 1000);
  EXPECT_EQ(k().Open(*user, P("f"), kernel::kORdOnly).error(), EACCES);
}

TEST_F(XfsTest, G089_DirWithoutExecDeniesTraversal) {
  ASSERT_TRUE(k().Mkdir(proc(), P("d"), 0755).ok());
  ASSERT_TRUE(WriteFile(P("d/f"), "x", 0644).ok());
  ASSERT_TRUE(k().Chmod(proc(), P("d"), 0600).ok());
  auto user = k().Fork(proc(), "user");
  user->creds = kernel::Credentials::User(1000, 1000);
  EXPECT_EQ(k().Open(*user, P("d/f"), kernel::kORdOnly).error(), EACCES);
}

TEST_F(XfsTest, G090_ChownByNonOwnerFailsEperm) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto user = k().Fork(proc(), "user");
  user->creds = kernel::Credentials::User(1000, 1000);
  EXPECT_EQ(k().Chown(*user, P("f"), 1000, 1000).error(), EPERM);
}

// --- statfs ---

TEST_F(XfsTest, G091_StatfsReportsFuseFilesystem) {
  auto statfs = k().Statfs(proc(), P(""));
  ASSERT_TRUE(statfs.ok());
  // statfs through the mount reports the *served* filesystem's numbers
  // (CntrFS forwards STATFS to the server, which answers for its root).
  EXPECT_FALSE(statfs->fs_type.empty());
  EXPECT_GT(statfs->total_blocks, 0u);
}

// =====================================================================
// The four documented failures (paper §5.1). Each asserts the deviation.
// =====================================================================

// xfstests #228: RLIMIT_FSIZE is not enforced through CNTRFS because file
// operations replay as the server process, which has no such limit.
TEST_F(XfsTest, G228_RlimitFsizeNotEnforced_KnownFailure) {
  proc().rlimits.fsize = 1024;
  auto fd = k().Open(proc(), P("limited"), kernel::kOWrOnly | kernel::kOCreat);
  ASSERT_TRUE(fd.ok());
  std::string big(4096, 'x');
  auto n = k().Write(proc(), fd.value(), big.data(), big.size());
  // POSIX wants EFBIG here; CNTRFS lets the write through (the deviation
  // the paper documents). Native filesystems in this kernel do enforce it.
  EXPECT_TRUE(n.ok()) << "expected the documented deviation, got " << n.status().ToString();
  EXPECT_EQ(n.value(), big.size());
  proc().rlimits.fsize = UINT64_MAX;
}

// xfstests #375: the SETGID bit is not cleared on chmod when the owner is
// not in the owning group, because CNTRFS delegates ACL decisions to the
// underlying filesystem via setfsuid/setfsgid and supplementary groups do
// not travel with the request.
TEST_F(XfsTest, G375_SetgidNotCleared_KnownFailure) {
  ASSERT_TRUE(WriteFile(P("sg"), "x").ok());
  ASSERT_TRUE(k().Chown(proc(), P("sg"), 1000, 2000).ok());
  // Owner (uid 1000) chmods 02755 while not in group 2000. Through CntrFS
  // the request arrives at the server with fsuid/fsgid only; the root
  // server keeps the bit.
  auto user = k().Fork(proc(), "user");
  user->creds = kernel::Credentials::User(1000, 1000);
  ASSERT_TRUE(k().Chmod(*user, P("sg"), 02755).ok());
  k().clock().Advance(2'000'000'000);
  auto attr = StatP(P("sg"));
  ASSERT_TRUE(attr.ok());
  EXPECT_NE(attr->mode & kernel::kModeSetGid, 0u)
      << "expected the documented deviation: setgid remains set through CNTRFS";
}

// xfstests #391: O_DIRECT is unsupported — FUSE makes direct I/O and mmap
// mutually exclusive and CNTRFS chose mmap (needed to execute binaries).
TEST_F(XfsTest, G391_DirectIoUnsupported_KnownFailure) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto fd = k().Open(proc(), P("f"), kernel::kORdOnly | kernel::kODirect);
  EXPECT_EQ(fd.error(), EINVAL) << "expected the documented deviation: O_DIRECT -> EINVAL";
}

// xfstests #426: name_to_handle_at fails — CNTRFS inodes are not
// persistent, so they cannot be exported as handles.
TEST_F(XfsTest, G426_ExportHandleUnsupported_KnownFailure) {
  ASSERT_TRUE(WriteFile(P("f"), "x").ok());
  auto handle = k().NameToHandle(proc(), P("f"));
  EXPECT_EQ(handle.error(), EOPNOTSUPP)
      << "expected the documented deviation: inodes are not exportable";
  // The same call against the native tmpfs succeeds.
  auto native = k().NameToHandle(*kernel_->init(), "/scratch/f");
  EXPECT_TRUE(native.ok());
}

}  // namespace
}  // namespace cntr::xfstests
