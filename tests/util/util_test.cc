// Unit tests for the util layer: Status/StatusOr, string/path helpers, RNG
// determinism, and the virtual clock.
#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace cntr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.error(), 0);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesErrnoAndMessage) {
  Status st(ENOENT, "no such container");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.error(), ENOENT);
  EXPECT_NE(st.ToString().find("no such container"), std::string::npos);
}

TEST(StatusOrTest, ValueAccess) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  StatusOr<int> err(Status::Error(EIO));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), EIO);
}

StatusOr<int> Doubled(StatusOr<int> in) {
  CNTR_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = Doubled(Status::Error(EACCES));
  EXPECT_EQ(err.error(), EACCES);
}

TEST(StringsTest, SplitPathDropsEmpties) {
  EXPECT_EQ(SplitPath("/a//b/c/"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
}

TEST(StringsTest, BasenameDirname) {
  EXPECT_EQ(Basename("/usr/bin/gdb"), "gdb");
  EXPECT_EQ(Dirname("/usr/bin/gdb"), "/usr/bin");
  EXPECT_EQ(Dirname("/top"), "/");
  EXPECT_EQ(Dirname("plain"), ".");
}

TEST(StringsTest, PathHasPrefix) {
  EXPECT_TRUE(PathHasPrefix("/usr/bin", "/usr"));
  EXPECT_TRUE(PathHasPrefix("/usr", "/usr"));
  EXPECT_FALSE(PathHasPrefix("/usrlocal", "/usr"));
  EXPECT_TRUE(PathHasPrefix("/anything", "/"));
}

struct NormalizeCase {
  const char* input;
  const char* expected;
};

class NormalizePathTest : public ::testing::TestWithParam<NormalizeCase> {};

TEST_P(NormalizePathTest, Normalizes) {
  EXPECT_EQ(NormalizePath(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NormalizePathTest,
    ::testing::Values(NormalizeCase{"/a/b/../c", "/a/c"}, NormalizeCase{"/a/./b", "/a/b"},
                      NormalizeCase{"/../a", "/a"}, NormalizeCase{"a/../../b", "../b"},
                      NormalizeCase{"/a/b/c/../../..", "/"}, NormalizeCase{"", "."},
                      NormalizeCase{"/", "/"}, NormalizeCase{"./a/", "a"},
                      NormalizeCase{"a//b///c", "a/b/c"}, NormalizeCase{"/a/b/./../c/.", "/a/c"}));

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.NowNs(), 0u);
  clock.Advance(1000);
  clock.Advance(500);
  EXPECT_EQ(clock.NowNs(), 1500u);
  SimTimer timer(clock);
  clock.Advance(250);
  EXPECT_EQ(timer.ElapsedNs(), 250u);
}

TEST(CostModelTest, DiskTransferCombinesOpAndBytes) {
  CostModel costs;
  uint64_t one_op = costs.DiskTransferNs(0);
  EXPECT_EQ(one_op, costs.disk_op_ns);
  EXPECT_GT(costs.DiskTransferNs(1 << 20), one_op);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace cntr
