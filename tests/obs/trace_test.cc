// Per-request tracing tests: span phase math, spans crossing the legacy and
// ring transports (including out-of-order ring completion), outcome tagging,
// the tracing kill switch, the slow-request log's level gate and rate limit,
// the /proc/cntr/metrics exposition, and torn-free FuseConn::stats() reads
// under concurrent traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fuse/fuse_conn.h"
#include "src/kernel/kernel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace cntr::obs {
namespace {

using cntr::CostModel;
using cntr::SimClock;
using fuse::FuseConn;
using fuse::FuseOpcode;
using fuse::FuseReply;
using fuse::FuseRequest;
using fuse::kFuseRootId;

FuseRequest GetattrFrom(kernel::Pid pid) {
  FuseRequest req;
  req.opcode = FuseOpcode::kGetattr;
  req.nodeid = kFuseRootId;
  req.pid = pid;
  return req;
}

// Restores the global tracing gate on scope exit so a failing test cannot
// leak a disabled plane into its siblings.
class TracingGuard {
 public:
  explicit TracingGuard(bool enabled) : old_(TracingEnabled()) {
    SetTracingEnabled(enabled);
  }
  ~TracingGuard() { SetTracingEnabled(old_); }

 private:
  bool old_;
};

Histogram::Snapshot PhaseSnap(MetricsRegistry* reg, const std::string& mount,
                              const char* op, const char* phase) {
  return reg
      ->GetHistogram("cntr_fuse_request_ns",
                     {{"mount", mount}, {"op", op}, {"phase", phase}})
      ->Snap();
}

uint64_t OutcomeCount(MetricsRegistry* reg, const std::string& mount, const char* op,
                      const char* outcome) {
  return reg
      ->GetCounter("cntr_fuse_requests_total",
                   {{"mount", mount}, {"op", op}, {"outcome", outcome}})
      ->Value();
}

// --- Phase math on hand-stamped spans (fully deterministic). ---

TEST(BreakdownTest, FullSpanYieldsAllPhases) {
  TraceSpan span;
  span.enqueue_ns = 100;
  span.reap_ns.store(150);
  span.dispatch_ns.store(160);
  span.reply_ns.store(200);
  SpanBreakdown b = Breakdown(span, /*wake_ns=*/230);
  EXPECT_EQ(b.total_ns, 130u);
  EXPECT_EQ(b.queue_ns, 50u);
  EXPECT_EQ(b.service_ns, 40u);
  EXPECT_EQ(b.transit_ns, 30u);
}

TEST(BreakdownTest, MissingStampsClampToZero) {
  // A request resolved out from under the server (timeout/abort): only the
  // enqueue stamp exists. Phases collapse to zero instead of wrapping.
  TraceSpan span;
  span.enqueue_ns = 1000;
  SpanBreakdown b = Breakdown(span, /*wake_ns=*/5000);
  EXPECT_EQ(b.total_ns, 4000u);
  EXPECT_EQ(b.queue_ns, 0u);
  EXPECT_EQ(b.service_ns, 0u);
  EXPECT_EQ(b.transit_ns, 0u);

  // Reaped and dispatched but never replied: service and transit stay zero.
  span.reap_ns.store(1500);
  span.dispatch_ns.store(1600);
  b = Breakdown(span, 5000);
  EXPECT_EQ(b.queue_ns, 500u);
  EXPECT_EQ(b.service_ns, 0u);
  EXPECT_EQ(b.transit_ns, 0u);
}

TEST(BreakdownTest, BackwardsWakeClampsTotal) {
  TraceSpan span;
  span.enqueue_ns = 500;
  EXPECT_EQ(Breakdown(span, /*wake_ns=*/400).total_ns, 0u);
}

TEST(TraceTest, MakeSpanHonoursTheKillSwitch) {
  {
    TracingGuard on(true);
    SpanPtr span = MakeSpan(42);
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->enqueue_ns, 42u);
  }
  {
    TracingGuard off(false);
    EXPECT_EQ(MakeSpan(42), nullptr);
  }
}

// --- Spans across the legacy wakeup transport. ---

TEST(TraceTransportTest, LegacyRoundTripLandsPhaseHistograms) {
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1, nullptr, &reg);
  const std::string mount = conn.mount_label();

  std::thread client([&] {
    auto reply = conn.SendAndWait(GetattrFrom(7));
    EXPECT_TRUE(reply.ok());
  });
  auto req = conn.ReadRequest();
  ASSERT_TRUE(req.has_value());
  ASSERT_NE(req->span, nullptr) << "tracing on: the request must carry a span";
  conn.WriteReply(req->unique, FuseReply{});
  client.join();

  for (const char* phase : {"total", "queue", "service", "transit"}) {
    EXPECT_EQ(PhaseSnap(&reg, mount, "GETATTR", phase).count, 1u) << phase;
  }
  // The wakeup handshake charges virtual time, so the round trip is
  // strictly positive and at least as long as any single phase.
  Histogram::Snapshot total = PhaseSnap(&reg, mount, "GETATTR", "total");
  EXPECT_GT(total.sum, 0u);
  for (const char* phase : {"queue", "service", "transit"}) {
    EXPECT_LE(PhaseSnap(&reg, mount, "GETATTR", phase).sum, total.sum) << phase;
  }
  EXPECT_EQ(OutcomeCount(&reg, mount, "GETATTR", "ok"), 1u);
  conn.Abort();
}

TEST(TraceTransportTest, ErrnoRepliesTagTheErrorOutcome) {
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1, nullptr, &reg);

  std::thread client([&] {
    auto reply = conn.SendAndWait(GetattrFrom(9));
    ASSERT_FALSE(reply.ok()) << "errno replies surface as a Status";
    EXPECT_EQ(reply.status().error(), ENOENT);
  });
  auto req = conn.ReadRequest();
  ASSERT_TRUE(req.has_value());
  FuseReply reply;
  reply.error = ENOENT;
  conn.WriteReply(req->unique, std::move(reply));
  client.join();

  EXPECT_EQ(OutcomeCount(&reg, conn.mount_label(), "GETATTR", "error"), 1u);
  EXPECT_EQ(OutcomeCount(&reg, conn.mount_label(), "GETATTR", "ok"), 0u);
  conn.Abort();
}

TEST(TraceTransportTest, AbortUnderTheWaiterTagsTheAbortOutcome) {
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1, nullptr, &reg);

  std::thread client([&] {
    auto reply = conn.SendAndWait(GetattrFrom(11));
    EXPECT_FALSE(reply.ok());
  });
  auto req = conn.ReadRequest();
  ASSERT_TRUE(req.has_value());
  conn.Abort();  // die with the request in the server's hands
  client.join();

  EXPECT_EQ(OutcomeCount(&reg, conn.mount_label(), "GETATTR", "abort"), 1u);
}

TEST(TraceTransportTest, TracingOffSkipsHistogramsButNotOutcomes) {
  TracingGuard off(false);
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1, nullptr, &reg);

  std::thread client([&] { (void)conn.SendAndWait(GetattrFrom(13)); });
  auto req = conn.ReadRequest();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->span, nullptr);
  conn.WriteReply(req->unique, FuseReply{});
  client.join();

  EXPECT_EQ(PhaseSnap(&reg, conn.mount_label(), "GETATTR", "total").count, 0u)
      << "no span, no histogram sample";
  EXPECT_EQ(OutcomeCount(&reg, conn.mount_label(), "GETATTR", "ok"), 1u)
      << "plain counters keep working with tracing off";
  conn.Abort();
}

// --- Spans across the ring transport, completions out of order. ---

TEST(TraceTransportTest, RingOutOfOrderCompletionKeepsSpansStraight) {
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 1, nullptr, &reg);
  ASSERT_GT(conn.ConfigureRing(64), 0u);
  const std::string mount = conn.mount_label();

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto reply = conn.SendAndWait(GetattrFrom(100 + c));
      EXPECT_TRUE(reply.ok());
    });
  }
  // Collect every request before answering, then complete in reverse
  // submission order: each waiter's wake pairs with its own span.
  std::vector<FuseRequest> pending;
  while (pending.size() < kClients) {
    std::vector<FuseRequest> batch = conn.ReadRequestBatch(0);
    ASSERT_FALSE(batch.empty());
    for (FuseRequest& req : batch) {
      ASSERT_NE(req.span, nullptr);
      EXPECT_NE(req.span->reap_ns.load(), 0u) << "reap stamped at ring claim";
      pending.push_back(std::move(req));
    }
  }
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    conn.WriteReply(it->unique, FuseReply{});
  }
  for (auto& t : clients) {
    t.join();
  }

  EXPECT_EQ(OutcomeCount(&reg, mount, "GETATTR", "ok"), static_cast<uint64_t>(kClients));
  for (const char* phase : {"total", "queue", "service", "transit"}) {
    Histogram::Snapshot snap = PhaseSnap(&reg, mount, "GETATTR", phase);
    EXPECT_EQ(snap.count, static_cast<uint64_t>(kClients)) << phase;
    EXPECT_LE(snap.Quantile(0.50), snap.Quantile(0.95)) << phase;
    EXPECT_LE(snap.Quantile(0.95), snap.Quantile(0.99)) << phase;
  }
  // Every request went out un-spliced: the path counter says copied.
  EXPECT_EQ(reg.GetCounter("cntr_fuse_payloads_total",
                           {{"mount", mount}, {"op", "GETATTR"}, {"path", "copied"}})
                ->Value(),
            static_cast<uint64_t>(kClients));
  conn.Abort();
}

// --- The slow-request log: level-gated and rate-limited. ---

TEST(SlowRequestLogTest, RespectsTheLogLevelGate) {
  MetricsRegistry reg;
  RequestMetrics rm(&reg, "m0", nullptr);
  rm.SetSlowThresholdNs(1);

  TraceSpan span;
  span.enqueue_ns = 100;
  span.reply_ns.store(150);

  SetGlobalLogLevel(LogLevel::kOff);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 5; ++i) {
    rm.RecordRequest(/*opcode=*/3, &span, /*wake_ns=*/100000, Outcome::kOk, false);
  }
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "")
      << "a silenced build must not emit slow-request lines";
  SetGlobalLogLevel(LogLevel::kWarn);
}

TEST(SlowRequestLogTest, EmitsRateLimitedWarnings) {
  MetricsRegistry reg;
  RequestMetrics rm(&reg, "m0", nullptr);
  rm.SetSlowThresholdNs(1);

  TraceSpan span;
  span.enqueue_ns = 100;
  span.reply_ns.store(150);

  SetGlobalLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  // Far past the limiter's per-second budget (10): the storm must collapse
  // to at most the budget's worth of lines.
  for (int i = 0; i < 200; ++i) {
    rm.RecordRequest(/*opcode=*/3, &span, /*wake_ns=*/100000, Outcome::kOk, false);
  }
  std::string err = testing::internal::GetCapturedStderr();
  size_t lines = 0;
  for (size_t pos = 0; (pos = err.find("slow request:", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_GE(lines, 1u) << err;
  EXPECT_LE(lines, 20u) << "the rate limiter must swallow the storm";
}

TEST(SlowRequestLogTest, ThresholdZeroDisables) {
  MetricsRegistry reg;
  RequestMetrics rm(&reg, "m0", nullptr);
  ASSERT_EQ(rm.slow_threshold_ns(), 0u) << "no env override: disabled by default";

  TraceSpan span;
  span.enqueue_ns = 100;
  testing::internal::CaptureStderr();
  rm.RecordRequest(/*opcode=*/3, &span, /*wake_ns=*/1'000'000'000, Outcome::kOk, false);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// --- /proc/cntr/metrics: the registry through the simulated procfs. ---

std::string ReadAll(kernel::Kernel& k, kernel::Process& proc, const std::string& path) {
  auto fd = k.Open(proc, path, kernel::kORdOnly);
  EXPECT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
  if (!fd.ok()) {
    return "";
  }
  std::string out;
  char buf[4096];
  while (true) {
    auto n = k.Read(proc, fd.value(), buf, sizeof(buf));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || n.value() == 0) {
      break;
    }
    out.append(buf, n.value());
  }
  (void)k.Close(proc, fd.value());
  return out;
}

TEST(ProcfsMetricsTest, RendersTheKernelRegistry) {
  auto k = kernel::Kernel::Create();
  auto init = k->init();

  std::string text = ReadAll(*k, *init, "/proc/cntr/metrics");
  ASSERT_FALSE(text.empty());
  // Kernel-subsystem gauges registered at construction.
  EXPECT_NE(text.find("# TYPE cntr_page_cache_hits gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("cntr_dcache_entries"), std::string::npos);
  EXPECT_NE(text.find("cntr_disk_read_ops"), std::string::npos);
  EXPECT_NE(text.find("cntr_splice_spliced_pages"), std::string::npos);
  EXPECT_NE(text.find("cntr_fault_hits"), std::string::npos);

  // The file is a live view: instruments added later show on the next read.
  k->metrics().GetCounter("cntr_probe_total", {{"mount", "m0"}})->Add(5);
  text = ReadAll(*k, *init, "/proc/cntr/metrics");
  EXPECT_NE(text.find("cntr_probe_total{mount=\"m0\"} 5"), std::string::npos);
}

TEST(ProcfsMetricsTest, DirectoryListsTheMetricsFile) {
  auto k = kernel::Kernel::Create();
  auto init = k->init();
  auto st = k->Stat(*init, "/proc/cntr/metrics");
  EXPECT_TRUE(st.ok()) << st.status().ToString();
  auto dir = k->Open(*init, "/proc/cntr", kernel::kORdOnly);
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  auto entries = k->Getdents(*init, dir.value());
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  bool found = false;
  for (const auto& e : entries.value()) {
    found = found || e.name == "metrics";
  }
  EXPECT_TRUE(found);
  (void)k->Close(*init, dir.value());
}

// --- FuseConn::stats() under fire: every field is an instrument read, so a
// concurrent snapshot can never tear. (TSan is the real assertion here.) ---

TEST(StatsConsistencyTest, ConcurrentSnapshotsUnderTraffic) {
  MetricsRegistry reg;
  SimClock clock;
  CostModel costs;
  FuseConn conn(&clock, &costs, 2, nullptr, &reg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 64;
  std::atomic<bool> done{false};

  // One worker per channel, each draining its own queue until the abort
  // empties it — the shape the real server runs.
  std::vector<std::thread> servers;
  for (size_t ch = 0; ch < 2; ++ch) {
    servers.emplace_back([&, ch] {
      while (true) {
        std::vector<FuseRequest> batch = conn.ReadRequestBatch(ch, /*max_batch=*/8);
        if (batch.empty()) {
          return;  // aborted and drained
        }
        for (FuseRequest& req : batch) {
          conn.WriteReply(req.unique, FuseReply{});
        }
      }
    });
  }
  std::thread reader([&] {
    // Cross-counter skew is inherent to lock-free aggregation, but each
    // counter must read clean and monotonic — a torn read would show up as
    // a wild value going backwards. (TSan is the sharper assertion here.)
    uint64_t last_requests = 0;
    uint64_t last_replies = 0;
    while (!done.load()) {
      FuseConn::Stats s = conn.stats();
      EXPECT_GE(s.requests, last_requests);
      EXPECT_GE(s.replies, last_replies);
      EXPECT_LE(s.requests, static_cast<uint64_t>(kClients) * kPerClient);
      last_requests = s.requests;
      last_replies = s.replies;
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto reply = conn.SendAndWait(GetattrFrom(500 + c));
        EXPECT_TRUE(reply.ok());
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  done.store(true);
  reader.join();
  conn.Abort();
  for (auto& t : servers) {
    t.join();
  }

  FuseConn::Stats s = conn.stats();
  EXPECT_EQ(s.requests, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(s.replies, static_cast<uint64_t>(kClients) * kPerClient);
}

}  // namespace
}  // namespace cntr::obs
