// Observability-plane unit tests: histogram bucket geometry and percentile
// math, sharded instruments under concurrent writers, registry identity and
// scope allocation, the Prometheus/JSON exposition surfaces, and the log
// rate limiter the slow-request path depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/logging.h"

namespace cntr::obs {
namespace {

// --- Bucket geometry: the log-linear index must be exact for small values,
// monotonic and gapless everywhere, and bounded-relative-error. ---

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramBucketsTest, UpperBoundsAreTheInclusiveEdges) {
  // BucketUpperBound is the largest value mapping to its bucket: the edge
  // itself lands inside, the next value lands in the next bucket.
  for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    uint64_t edge = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(edge), i) << "edge " << edge;
    EXPECT_EQ(Histogram::BucketIndex(edge + 1), i + 1) << "edge " << edge;
  }
}

TEST(HistogramBucketsTest, IndexIsMonotonic) {
  // Dense sweep over the first octaves, then doubling steps with
  // around-the-edge probes across the whole range.
  size_t prev = 0;
  for (uint64_t v = 0; v < 4096; ++v) {
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "v=" << v;
    prev = idx;
  }
  for (uint64_t base = 4096; base < (uint64_t{1} << 50); base <<= 1) {
    for (uint64_t v : {base - 1, base, base + 1, base + base / 2}) {
      size_t idx = Histogram::BucketIndex(v);
      EXPECT_GE(idx, prev) << "v=" << v;
      EXPECT_LT(idx, Histogram::kBuckets);
      prev = idx;
    }
  }
}

TEST(HistogramBucketsTest, RelativeErrorIsBounded) {
  // Within an octave the bucket width is 2^octave / kSub, and every value
  // in the octave is >= 2^octave, so the worst-case overshoot of the upper
  // edge is value / kSub.
  for (uint64_t v = Histogram::kSub; v < (uint64_t{1} << 40); v = v * 3 + 7) {
    uint64_t ub = Histogram::BucketUpperBound(Histogram::BucketIndex(v));
    ASSERT_GE(ub, v);
    EXPECT_LE(ub - v, v / Histogram::kSub + 1) << "v=" << v << " ub=" << ub;
  }
}

// --- Percentile math. ---

TEST(HistogramTest, EmptySnapshotQuantilesAreZero) {
  Histogram h;
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, QuantilesTrackTheRecordedDistribution) {
  Histogram h;
  // 1..1000 microseconds' worth of ns values, uniform.
  for (uint64_t i = 1; i <= 1000; ++i) {
    h.Record(i * 1000);
  }
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 500500.0);
  // Log-linear buckets bound relative error at 1/kSub (25% edge-to-edge);
  // allow that plus interpolation slack.
  EXPECT_NEAR(snap.Quantile(0.50), 500000.0, 150000.0);
  EXPECT_NEAR(snap.Quantile(0.95), 950000.0, 250000.0);
  // Quantiles are clamped to the recorded max, never past it.
  EXPECT_LE(snap.Quantile(0.99), static_cast<double>(snap.max));
  EXPECT_LE(snap.Quantile(1.0), static_cast<double>(snap.max));
  // Monotonic in q.
  EXPECT_LE(snap.Quantile(0.50), snap.Quantile(0.95));
  EXPECT_LE(snap.Quantile(0.95), snap.Quantile(0.99));
}

TEST(HistogramTest, SingleValueQuantilesCollapseToIt) {
  Histogram h;
  h.Record(777);
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 777u);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_LE(snap.Quantile(q), 777.0);
    EXPECT_GE(snap.Quantile(q), 777.0 * (1.0 - 1.0 / Histogram::kSub) - 1);
  }
}

// --- Sharded writers: concurrent increments must never lose a count.
// (This is also the TSan surface for the relaxed-atomic cells.) ---

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + 100);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.max, 7100u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(5);
  EXPECT_EQ(g.Value(), 12);
}

// --- Registry identity and scopes. ---

TEST(RegistryTest, InstrumentsAreIdempotentAndStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("cntr_test_total", {{"mount", "m0"}});
  Counter* b = reg.GetCounter("cntr_test_total", {{"mount", "m0"}});
  Counter* c = reg.GetCounter("cntr_test_total", {{"mount", "m1"}});
  EXPECT_EQ(a, b) << "same (name, labels) must resolve to one instrument";
  EXPECT_NE(a, c) << "distinct labels are distinct series";
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(c->Value(), 0u);

  Histogram* h1 = reg.GetHistogram("cntr_test_ns", {{"op", "READ"}});
  Histogram* h2 = reg.GetHistogram("cntr_test_ns", {{"op", "READ"}});
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, AllocScopeIsMonotonicPerKind) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.AllocScope("mount"), 0u);
  EXPECT_EQ(reg.AllocScope("mount"), 1u);
  EXPECT_EQ(reg.AllocScope("cntrfs"), 0u) << "kinds count independently";
  EXPECT_EQ(reg.AllocScope("mount"), 2u);
}

TEST(RegistryTest, SeriesKeyFormat) {
  EXPECT_EQ(SeriesKey("cntr_x_total", {}), "cntr_x_total");
  EXPECT_EQ(SeriesKey("cntr_x_total", {{"a", "b"}, {"c", "d"}}),
            "cntr_x_total{a=\"b\",c=\"d\"}");
}

TEST(RegistryTest, CallbacksAppearAndUnregister) {
  MetricsRegistry reg;
  double value = 41.0;
  uint64_t handle =
      reg.AddCallback("cntr_cb_value", {{"src", "test"}}, [&value] { return value; });
  value = 42.0;
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("cntr_cb_value{src=\"test\"} 42"), std::string::npos) << text;
  reg.RemoveCallback(handle);
  text = reg.RenderPrometheus();
  EXPECT_EQ(text.find("cntr_cb_value"), std::string::npos)
      << "removed callback must leave the exposition";
}

// --- Exposition surfaces. ---

TEST(RegistryTest, RenderPrometheusShape) {
  MetricsRegistry reg;
  reg.GetCounter("cntr_reqs_total", {{"mount", "m0"}})->Add(5);
  reg.GetGauge("cntr_depth", {{"mount", "m0"}})->Set(-2);
  Histogram* h = reg.GetHistogram("cntr_lat_ns", {{"mount", "m0"}});
  h->Record(100);
  h->Record(200000);

  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE cntr_reqs_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cntr_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cntr_lat_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("cntr_reqs_total{mount=\"m0\"} 5"), std::string::npos);
  EXPECT_NE(text.find("cntr_depth{mount=\"m0\"} -2"), std::string::npos);
  // Cumulative buckets end at +Inf == _count, plus sum and quantiles.
  EXPECT_NE(text.find("cntr_lat_ns_bucket{mount=\"m0\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cntr_lat_ns_count{mount=\"m0\"} 2"), std::string::npos);
  EXPECT_NE(text.find("cntr_lat_ns_sum{mount=\"m0\"} 200100"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Deterministic: rendering twice gives the same bytes.
  EXPECT_EQ(text, reg.RenderPrometheus());
}

// Minimal structural JSON scan: balanced braces/brackets outside strings,
// no trailing garbage. Enough to catch an escaping or comma bug without a
// JSON library.
void ExpectBalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced close at offset " << i;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced braces";
}

TEST(RegistryTest, SnapshotJsonSchema) {
  MetricsRegistry reg;
  reg.GetCounter("cntr_reqs_total", {{"mount", "m0"}})->Add(7);
  reg.GetGauge("cntr_depth")->Set(3);
  reg.AddCallback("cntr_cb", {}, [] { return 1.5; });
  Histogram* h = reg.GetHistogram("cntr_lat_ns", {{"op", "READ"}});
  for (uint64_t i = 1; i <= 100; ++i) {
    h->Record(i * 10);
  }

  std::string json = reg.SnapshotJson();
  ExpectBalancedJson(json);
  // Top-level sections.
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  // Series keys carry their label blocks; values are numbers.
  EXPECT_NE(json.find("\"cntr_reqs_total{mount=\\\"m0\\\"}\":7"), std::string::npos);
  EXPECT_NE(json.find("\"cntr_depth\":3"), std::string::npos);
  // Callbacks fold into the gauges section.
  EXPECT_NE(json.find("\"cntr_cb\":1.5"), std::string::npos);
  // Histogram entries expose the full summary schema.
  for (const char* field : {"\"count\":100", "\"sum\":", "\"max\":1000", "\"mean\":",
                            "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << "missing " << field;
  }
}

// --- The slow-request log's throttle. ---

TEST(LogRateLimiterTest, CapsPerWindowAndCountsSuppressed) {
  LogRateLimiter limiter(/*max_per_sec=*/3);
  int allowed = 0;
  for (int i = 0; i < 10; ++i) {
    if (limiter.Allow()) {
      ++allowed;
    }
  }
  EXPECT_EQ(allowed, 3);
  EXPECT_EQ(limiter.suppressed_total(), 7u);
}

TEST(LogRateLimiterTest, ReportsSuppressedTallyOnNextAllowedCall) {
  LogRateLimiter limiter(/*max_per_sec=*/1);
  uint64_t suppressed = 123;
  ASSERT_TRUE(limiter.Allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limiter.Allow());
  }
  // The tally survives until a later allowed call drains it (the next
  // window in production; here we read the running total).
  EXPECT_EQ(limiter.suppressed_total(), 5u);
}

TEST(LogRateLimiterTest, ConcurrentCallersNeverExceedTheCapByMuch) {
  // The CAS window rotation admits bounded slack, never unbounded leakage:
  // with one window and N threads racing, allowed stays near the cap and
  // allowed + suppressed accounts for every call.
  LogRateLimiter limiter(/*max_per_sec=*/4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<int> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (limiter.Allow()) {
          allowed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // All calls land within ~one second, so at most a couple of window
  // rotations' worth of tokens can be issued.
  EXPECT_GE(allowed.load(), 4);
  EXPECT_LE(allowed.load(), 4 * 4);
  EXPECT_EQ(allowed.load() + static_cast<int>(limiter.suppressed_total()),
            kThreads * kPerThread);
}

}  // namespace
}  // namespace cntr::obs
