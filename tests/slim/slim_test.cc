// Unit tests for the docker-slim analogue: access tracking, the analyze
// pipeline, validation, and the Top-50 dataset's calibration properties.
#include <gtest/gtest.h>

#include "src/container/engine.h"
#include "src/slim/access_tracker.h"
#include "src/slim/dataset.h"
#include "src/slim/slimmer.h"

namespace cntr::slim {
namespace {

using container::FileClass;
using container::Image;
using container::ImageFile;
using container::Layer;

class SlimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = kernel::Kernel::Create();
    runtime_ = std::make_unique<container::ContainerRuntime>(kernel_.get());
    registry_ = std::make_unique<container::Registry>(&kernel_->clock());
    docker_ = std::make_unique<container::DockerEngine>(runtime_.get(), registry_.get());
  }

  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::unique_ptr<container::Registry> registry_;
  std::unique_ptr<container::DockerEngine> docker_;
};

TEST_F(SlimTest, AccessTrackerRecordsOpensAndStats) {
  AccessTracker tracker(kernel_.get());
  auto proc = kernel_->Fork(*kernel_->init(), "probe");
  auto fd = kernel_->Open(*proc, "/etc", kernel::kORdOnly | kernel::kODirectory);
  ASSERT_TRUE(fd.ok());
  (void)kernel_->Stat(*proc, "/dev/null");
  auto accessed = tracker.AccessedBy(proc->global_pid());
  EXPECT_TRUE(accessed.count("/etc") != 0);
  EXPECT_TRUE(accessed.count("/dev/null") != 0);
  // Other processes' accesses are attributed separately.
  EXPECT_TRUE(tracker.AccessedBy(kernel_->init()->global_pid()).count("/etc") == 0);
}

TEST_F(SlimTest, AnalyzeDropsUntouchedBulk) {
  Image image("acme/svc", "latest");
  Layer layer;
  layer.id = "all";
  layer.files.push_back({"/usr/bin/svc", 10 << 20, 0755, FileClass::kAppBinary, ""});
  layer.files.push_back({"/etc/svc.conf", 0, 0644, FileClass::kConfig, "a=1\n"});
  layer.files.push_back({"/usr/share/doc/big", 40 << 20, 0644, FileClass::kDocs, ""});
  layer.files.push_back({"/usr/bin/gdb", 8 << 20, 0755, FileClass::kDebugTool, ""});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/svc";

  DockerSlim slimmer(kernel_.get(), docker_.get());
  auto result = slimmer.Analyze(image, {"/usr/bin/svc", "/etc/svc.conf"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->validated);
  EXPECT_EQ(result->files_kept, 2u);
  EXPECT_EQ(result->files_dropped, 2u);
  // 48MB of docs+gdb dropped from 58MB total ≈ 82%.
  EXPECT_GT(result->reduction_pct, 75.0);
  EXPECT_LT(result->reduction_pct, 90.0);
}

TEST_F(SlimTest, ConfigFilesSurviveStaticAnalysis) {
  Image image("acme/cfg", "latest");
  Layer layer;
  layer.id = "all";
  layer.files.push_back({"/usr/bin/app", 1 << 20, 0755, FileClass::kAppBinary, ""});
  layer.files.push_back({"/etc/untouched.conf", 0, 0644, FileClass::kConfig, "keep=me\n"});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/app";

  DockerSlim slimmer(kernel_.get(), docker_.get());
  auto result = slimmer.Analyze(image, {"/usr/bin/app"});
  ASSERT_TRUE(result.ok());
  bool kept = false;
  for (const auto& f : result->slim_image.Flatten()) {
    if (f.path == "/etc/untouched.conf") {
      kept = true;
    }
  }
  EXPECT_TRUE(kept) << "static analysis must keep config files";
}

TEST_F(SlimTest, AnalyzeFailsWhenExercisePathMissing) {
  Image image("acme/broken", "latest");
  Layer layer;
  layer.id = "all";
  layer.files.push_back({"/usr/bin/app", 1 << 20, 0755, FileClass::kAppBinary, ""});
  image.AddLayer(std::move(layer));
  image.entrypoint() = "/usr/bin/app";
  DockerSlim slimmer(kernel_.get(), docker_.get());
  auto result = slimmer.Analyze(image, {"/usr/bin/app", "/does/not/exist"});
  EXPECT_FALSE(result.ok());
}

TEST(DatasetTest, Has50DeterministicImages) {
  auto a = Top50Images();
  auto b = Top50Images();
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image.Ref(), b[i].image.Ref());
    EXPECT_EQ(a[i].image.TotalBytes(), b[i].image.TotalBytes());
  }
}

TEST(DatasetTest, SixGoBinaryImages) {
  int go = 0;
  for (const auto& entry : Top50Images()) {
    if (entry.family == "go-binary") {
      ++go;
      // Single binary + config + a sliver of docs.
      EXPECT_GT(entry.image.BytesOfClass(FileClass::kAppBinary), 10u << 20);
      EXPECT_EQ(entry.image.BytesOfClass(FileClass::kPackageManager), 0u);
    }
  }
  EXPECT_EQ(go, 6);
}

TEST(DatasetTest, RuntimePathsExistInEachImage) {
  for (const auto& entry : Top50Images()) {
    std::set<std::string> paths;
    for (const auto& f : entry.image.Flatten()) {
      paths.insert(f.path);
    }
    for (const auto& needed : entry.runtime_paths) {
      EXPECT_TRUE(paths.count(needed) != 0)
          << entry.image.name() << " exercise path missing: " << needed;
    }
  }
}

TEST(DatasetTest, EntrypointIsARuntimePath) {
  for (const auto& entry : Top50Images()) {
    bool found = false;
    for (const auto& p : entry.runtime_paths) {
      if (p == entry.image.entrypoint()) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << entry.image.name();
  }
}

}  // namespace
}  // namespace cntr::slim
