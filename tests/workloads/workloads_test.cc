// Tests for the benchmark layer itself: every workload must run to
// completion on both sides with sane metrics, and the harness must compute
// overheads by the paper's methodology.
#include <gtest/gtest.h>

#include "src/workloads/harness.h"

namespace cntr::workloads {
namespace {

// Every Figure 2 workload completes natively with a positive metric.
class WorkloadRunTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadRunTest, RunsNativelyWithPositiveMetric) {
  auto suite = MakePhoronixSuite();
  ASSERT_LT(GetParam(), suite.size());
  auto& entry = suite[GetParam()];
  HarnessOptions opts;
  auto side = BenchSide::MakeNative(opts);
  ASSERT_TRUE(side.ok()) << side.status().ToString();
  auto result = (*side)->Run(*entry.workload);
  ASSERT_TRUE(result.ok()) << entry.workload->Name() << ": " << result.status().ToString();
  EXPECT_GT(result->value, 0.0) << entry.workload->Name();
  EXPECT_GT(result->elapsed_ns, 0u) << entry.workload->Name();
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, WorkloadRunTest, ::testing::Range<size_t>(0, 20),
                         [](const auto& info) {
                           auto suite = MakePhoronixSuite();
                           std::string name = suite[info.param].workload->Name();
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out + "_" + std::to_string(info.param);
                         });

TEST(SuiteTest, HasTwentyEntriesMatchingFigure2) {
  auto suite = MakePhoronixSuite();
  EXPECT_EQ(suite.size(), 20u);
  // The paper's three CntrFS-wins carry sub-1.0 expectations.
  int faster = 0;
  for (const auto& entry : suite) {
    if (entry.paper_overhead < 1.0) {
      ++faster;
    }
  }
  EXPECT_EQ(faster, 4) << "FIO, Pgbench, TIO-write, Dbench-12 are the paper's sub-1.0 bars";
}

TEST(HarnessTest, CompareComputesRatioPerPaperMethodology) {
  HarnessOptions opts;
  auto workload = MakePostMark();
  auto row = CompareWorkload(*workload, 7.1, opts);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  // PostMark metric is tx/s (higher better): overhead = native/cntr > 1.
  EXPECT_GT(row->native.value, row->cntr.value);
  EXPECT_NEAR(row->overhead, row->native.value / row->cntr.value, 1e-9);
  EXPECT_GT(row->overhead, 2.0) << "postmark must be a clear CntrFS outlier";
}

TEST(HarnessTest, CntrSideIsDeterministic) {
  HarnessOptions opts;
  auto run_once = [&] {
    auto workload = MakeSqlite();
    auto side = BenchSide::MakeCntrFs(opts);
    EXPECT_TRUE(side.ok());
    auto result = (*side)->Run(*workload);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->elapsed_ns : 0;
  };
  uint64_t a = run_once();
  uint64_t b = run_once();
  // Virtual time: identical inputs, identical costs (server threads add no
  // wall-clock jitter to the virtual clock).
  EXPECT_EQ(a, b);
}

TEST(HarnessTest, OptimizedBeatsBaselineMountOptions) {
  auto workload = MakeCompileBench("read");
  HarnessOptions optimized;
  HarnessOptions baseline;
  baseline.fuse = fuse::FuseMountOptions::Baseline();
  auto fast = BenchSide::MakeCntrFs(optimized);
  auto slow = BenchSide::MakeCntrFs(baseline);
  ASSERT_TRUE(fast.ok() && slow.ok());
  auto fast_result = (*fast)->Run(*workload);
  auto slow_result = (*slow)->Run(*workload);
  ASSERT_TRUE(fast_result.ok() && slow_result.ok());
  EXPECT_GT(fast_result->value, slow_result->value)
      << "the full optimization set must outperform the baseline (paper 5.2.3)";
}

}  // namespace
}  // namespace cntr::workloads
